//! Forward-mode dual numbers: first-order [`Dual`] and second-order
//! [`Dual2`].
//!
//! `Dual2` propagates `(f, f', f'')` through a univariate computation. The
//! RBF kernels only ever need derivatives with respect to the radius `r` (the
//! chain rule to Cartesian derivatives is closed-form), so second-order
//! univariate forward mode is exactly the tool: with it, `∇²φ` for a *user
//! supplied* `φ` costs one evaluation — the Rust analogue of defining the
//! differential operator `D` via `jax.grad` in the paper.

use crate::scalar::Scalar;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// First-order dual number `a + b·ε` with `ε² = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dual {
    /// Primal value.
    pub re: f64,
    /// Derivative (tangent) component.
    pub eps: f64,
}

impl Dual {
    /// A constant (zero derivative).
    pub fn constant(v: f64) -> Self {
        Dual { re: v, eps: 0.0 }
    }
    /// The differentiation variable (unit derivative).
    pub fn variable(v: f64) -> Self {
        Dual { re: v, eps: 1.0 }
    }
}

/// Evaluates `f` and `df/dx` at `x` in one pass.
pub fn derivative(f: impl Fn(Dual) -> Dual, x: f64) -> (f64, f64) {
    let y = f(Dual::variable(x));
    (y.re, y.eps)
}

impl Add for Dual {
    type Output = Dual;
    fn add(self, o: Dual) -> Dual {
        Dual {
            re: self.re + o.re,
            eps: self.eps + o.eps,
        }
    }
}
impl Sub for Dual {
    type Output = Dual;
    fn sub(self, o: Dual) -> Dual {
        Dual {
            re: self.re - o.re,
            eps: self.eps - o.eps,
        }
    }
}
impl Mul for Dual {
    type Output = Dual;
    fn mul(self, o: Dual) -> Dual {
        Dual {
            re: self.re * o.re,
            eps: self.re * o.eps + self.eps * o.re,
        }
    }
}
impl Div for Dual {
    type Output = Dual;
    fn div(self, o: Dual) -> Dual {
        Dual {
            re: self.re / o.re,
            eps: (self.eps * o.re - self.re * o.eps) / (o.re * o.re),
        }
    }
}
impl Neg for Dual {
    type Output = Dual;
    fn neg(self) -> Dual {
        Dual {
            re: -self.re,
            eps: -self.eps,
        }
    }
}

impl Scalar for Dual {
    fn from_f64(v: f64) -> Self {
        Dual::constant(v)
    }
    fn value(&self) -> f64 {
        self.re
    }
    fn sqrt(self) -> Self {
        let s = self.re.sqrt();
        Dual {
            re: s,
            eps: self.eps / (2.0 * s),
        }
    }
    fn exp(self) -> Self {
        let e = self.re.exp();
        Dual {
            re: e,
            eps: self.eps * e,
        }
    }
    fn ln(self) -> Self {
        Dual {
            re: self.re.ln(),
            eps: self.eps / self.re,
        }
    }
    fn sin(self) -> Self {
        Dual {
            re: self.re.sin(),
            eps: self.eps * self.re.cos(),
        }
    }
    fn cos(self) -> Self {
        Dual {
            re: self.re.cos(),
            eps: -self.eps * self.re.sin(),
        }
    }
    fn tanh(self) -> Self {
        let t = self.re.tanh();
        Dual {
            re: t,
            eps: self.eps * (1.0 - t * t),
        }
    }
    fn powi(self, n: i32) -> Self {
        Dual {
            re: self.re.powi(n),
            eps: self.eps * n as f64 * self.re.powi(n - 1),
        }
    }
    fn abs(self) -> Self {
        Dual {
            re: self.re.abs(),
            eps: self.eps * self.re.signum(),
        }
    }
}

/// Second-order dual: propagates `(f, f', f'')` exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dual2 {
    /// Primal value.
    pub v: f64,
    /// First derivative.
    pub d: f64,
    /// Second derivative.
    pub dd: f64,
}

impl Dual2 {
    /// A constant.
    pub fn constant(v: f64) -> Self {
        Dual2 { v, d: 0.0, dd: 0.0 }
    }
    /// The differentiation variable.
    pub fn variable(v: f64) -> Self {
        Dual2 { v, d: 1.0, dd: 0.0 }
    }
}

/// Evaluates `f, f', f''` at `x` in one pass.
pub fn derivative2(f: impl Fn(Dual2) -> Dual2, x: f64) -> (f64, f64, f64) {
    let y = f(Dual2::variable(x));
    (y.v, y.d, y.dd)
}

impl Add for Dual2 {
    type Output = Dual2;
    fn add(self, o: Dual2) -> Dual2 {
        Dual2 {
            v: self.v + o.v,
            d: self.d + o.d,
            dd: self.dd + o.dd,
        }
    }
}
impl Sub for Dual2 {
    type Output = Dual2;
    fn sub(self, o: Dual2) -> Dual2 {
        Dual2 {
            v: self.v - o.v,
            d: self.d - o.d,
            dd: self.dd - o.dd,
        }
    }
}
impl Mul for Dual2 {
    type Output = Dual2;
    fn mul(self, o: Dual2) -> Dual2 {
        Dual2 {
            v: self.v * o.v,
            d: self.v * o.d + self.d * o.v,
            dd: self.v * o.dd + 2.0 * self.d * o.d + self.dd * o.v,
        }
    }
}
impl Div for Dual2 {
    type Output = Dual2;
    fn div(self, o: Dual2) -> Dual2 {
        let v = self.v / o.v;
        let d = (self.d - v * o.d) / o.v;
        let dd = (self.dd - 2.0 * d * o.d - v * o.dd) / o.v;
        Dual2 { v, d, dd }
    }
}
impl Neg for Dual2 {
    type Output = Dual2;
    fn neg(self) -> Dual2 {
        Dual2 {
            v: -self.v,
            d: -self.d,
            dd: -self.dd,
        }
    }
}

impl Dual2 {
    /// Chain rule for a univariate elementary function with known first and
    /// second derivatives at the primal point.
    #[inline]
    fn chain(self, f: f64, fp: f64, fpp: f64) -> Dual2 {
        Dual2 {
            v: f,
            d: fp * self.d,
            dd: fpp * self.d * self.d + fp * self.dd,
        }
    }
}

impl Scalar for Dual2 {
    fn from_f64(v: f64) -> Self {
        Dual2::constant(v)
    }
    fn value(&self) -> f64 {
        self.v
    }
    fn sqrt(self) -> Self {
        let s = self.v.sqrt();
        self.chain(s, 0.5 / s, -0.25 / (s * s * s))
    }
    fn exp(self) -> Self {
        let e = self.v.exp();
        self.chain(e, e, e)
    }
    fn ln(self) -> Self {
        self.chain(self.v.ln(), 1.0 / self.v, -1.0 / (self.v * self.v))
    }
    fn sin(self) -> Self {
        self.chain(self.v.sin(), self.v.cos(), -self.v.sin())
    }
    fn cos(self) -> Self {
        self.chain(self.v.cos(), -self.v.sin(), -self.v.cos())
    }
    fn tanh(self) -> Self {
        let t = self.v.tanh();
        let s = 1.0 - t * t;
        self.chain(t, s, -2.0 * t * s)
    }
    fn powi(self, n: i32) -> Self {
        let nf = n as f64;
        self.chain(
            self.v.powi(n),
            nf * self.v.powi(n - 1),
            nf * (nf - 1.0) * self.v.powi(n - 2),
        )
    }
    fn abs(self) -> Self {
        let s = self.v.signum();
        self.chain(self.v.abs(), s, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd1(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6 * (1.0 + x.abs());
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn dual_derivative_of_composite() {
        // f(x) = sin(x^2) * exp(x); f'(x) = 2x cos(x^2) e^x + sin(x^2) e^x
        let f = |x: Dual| (x * x).sin() * x.exp();
        let (v, d) = derivative(f, 0.8);
        let expected_v = (0.8f64 * 0.8).sin() * (0.8f64).exp();
        let expected_d = 2.0 * 0.8 * (0.8f64 * 0.8).cos() * (0.8f64).exp() + expected_v;
        assert!((v - expected_v).abs() < 1e-14);
        assert!((d - expected_d).abs() < 1e-14);
    }

    #[test]
    fn dual_elementary_functions_vs_fd() {
        type Check = (fn(Dual) -> Dual, fn(f64) -> f64);
        for &x in &[0.3, 0.9, 1.7] {
            let checks: Vec<Check> = vec![
                (|d| d.sqrt(), |x| x.sqrt()),
                (|d| d.exp(), |x| x.exp()),
                (|d| d.ln(), |x| x.ln()),
                (|d| d.sin(), |x| x.sin()),
                (|d| d.cos(), |x| x.cos()),
                (|d| d.tanh(), |x| x.tanh()),
                (|d| d.powi(3), |x| x.powi(3)),
                (|d| Scalar::recip(d), |x| 1.0 / x),
                (|d| Scalar::sech(d), |x| 1.0 / x.cosh()),
            ];
            for (fd_fun, f) in checks {
                let (_, d) = derivative(fd_fun, x);
                let fdv = fd1(f, x);
                assert!(
                    (d - fdv).abs() < 1e-6 * (1.0 + fdv.abs()),
                    "derivative mismatch at x={x}: ad={d} fd={fdv}"
                );
            }
        }
    }

    #[test]
    fn dual2_second_derivatives_vs_closed_form() {
        // phi(r) = r^3: phi'' = 6r.
        let (v, d, dd) = derivative2(|r| r.powi(3), 1.5);
        assert!((v - 3.375).abs() < 1e-14);
        assert!((d - 6.75).abs() < 1e-14);
        assert!((dd - 9.0).abs() < 1e-13);
        // sin: f'' = -sin
        let (_, _, dd) = derivative2(|x| x.sin(), 0.6);
        assert!((dd + (0.6f64).sin()).abs() < 1e-13);
    }

    #[test]
    fn dual2_division_second_derivative() {
        // f(x) = 1/(1+x), f'' = 2/(1+x)^3.
        let f = |x: Dual2| Dual2::constant(1.0) / (Dual2::constant(1.0) + x);
        let (_, d, dd) = derivative2(f, 0.5);
        assert!((d + 1.0 / 2.25).abs() < 1e-13);
        assert!((dd - 2.0 / 3.375).abs() < 1e-12);
    }

    #[test]
    fn dual2_gaussian_kernel_derivatives() {
        // phi(r) = exp(-r^2): phi' = -2r e^{-r^2}, phi'' = (4r^2-2) e^{-r^2}.
        let f = |r: Dual2| (-(r * r)).exp();
        let (v, d, dd) = derivative2(f, 0.9);
        let e = (-0.81f64).exp();
        assert!((v - e).abs() < 1e-14);
        assert!((d + 1.8 * e).abs() < 1e-13);
        assert!((dd - (4.0 * 0.81 - 2.0) * e).abs() < 1e-12);
    }

    /// Property tests need the proptest engine; enable with
    /// `--features proptest`.
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn fd2(f: impl Fn(f64) -> f64, x: f64) -> f64 {
            let h = 1e-4 * (1.0 + x.abs());
            (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn prop_dual_matches_fd(x in 0.1f64..3.0) {
                let f_dual = |d: Dual| (d * d + Dual::constant(1.0)).sqrt() * d.tanh();
                let f = |x: f64| (x * x + 1.0).sqrt() * x.tanh();
                let (_, d) = derivative(f_dual, x);
                prop_assert!((d - fd1(f, x)).abs() < 1e-5 * (1.0 + d.abs()));
            }

            #[test]
            fn prop_dual2_matches_fd(x in 0.2f64..2.5) {
                let f_dual = |d: Dual2| d.powi(3) * d.sin() + d.exp();
                let f = |x: f64| x.powi(3) * x.sin() + x.exp();
                let (_, d, dd) = derivative2(f_dual, x);
                prop_assert!((d - fd1(f, x)).abs() < 1e-5 * (1.0 + d.abs()));
                prop_assert!((dd - fd2(f, x)).abs() < 1e-3 * (1.0 + dd.abs()));
            }

            #[test]
            fn prop_dual_product_rule(x in 0.1f64..2.0) {
                let (_, d_fg) = derivative(|d| d.sin() * d.exp(), x);
                let (f, df) = derivative(|d| d.sin(), x);
                let (g, dg) = derivative(|d| d.exp(), x);
                prop_assert!((d_fg - (df * g + f * dg)).abs() < 1e-12);
            }
        }
    }
}
