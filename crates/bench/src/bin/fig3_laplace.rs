//! Regenerates figure 3 (a, b, f, g): the Laplace control problem.
//!
//! * fig 3a — the optimal controls found by DAL and DP against the
//!   analytic minimisers (the paper's printed formula *and* the
//!   self-consistent series minimiser — see `pde::analytic`).
//! * fig 3b — the cost `J` versus iteration for both methods (+ the FD
//!   baseline).
//! * fig 3f/3g — the optimized state versus the analytic state, reported as
//!   L2/L∞ error norms on an evaluation grid.
//!
//! Usage: `fig3_laplace [nx] [iterations]` (defaults 32, 400).
//! CSV output lands in `results/`.

use bench::{print_series, write_csv};
use control::laplace::{run_ctx, GradMethod, LaplaceRunConfig};
use control::RunCtx;
use geometry::Point2;
use linalg::DVec;
use pde::{analytic, LaplaceControlProblem};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nx: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let iterations: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
    println!("== fig 3 (Laplace control): nx = {nx}, iterations = {iterations} ==\n");

    let problem = LaplaceControlProblem::new(nx).expect("problem assembly");
    let cfg = LaplaceRunConfig {
        nx,
        iterations,
        lr: 1e-2, // Table 1
        log_every: (iterations / 60).max(1),
        ..Default::default()
    };

    let dp = run_ctx(&problem, &cfg, GradMethod::Dp, &RunCtx::unchecked()).expect("DP run");
    let dal = run_ctx(&problem, &cfg, GradMethod::Dal, &RunCtx::unchecked()).expect("DAL run");
    let fd = run_ctx(
        &problem,
        &LaplaceRunConfig {
            iterations: iterations.min(100),
            ..cfg.clone()
        },
        GradMethod::FiniteDiff,
        &RunCtx::unchecked(),
    )
    .expect("FD run");

    // ---- fig 3b: convergence curves ----
    println!("-- fig 3b: J vs iteration --");
    for r in [&dal.report, &dp.report, &fd.report] {
        let series: Vec<String> = r
            .history
            .entries
            .iter()
            .step_by((r.history.entries.len() / 8).max(1))
            .map(|e| format!("({}, {:.2e})", e.iter, e.cost))
            .collect();
        println!("{:4}: {}", r.method, series.join(" "));
    }
    println!(
        "\nfinal J:   DAL {:.3e}   DP {:.3e}   FD {:.3e}",
        dal.report.final_cost, dp.report.final_cost, fd.report.final_cost
    );
    println!("paper (100x100, 500 iters / Table 3): DAL 4.6e-3, DP 2.2e-9\n");
    let rows_b: Vec<Vec<f64>> = dp
        .report
        .history
        .entries
        .iter()
        .zip(dal.report.history.entries.iter())
        .map(|(d, a)| vec![d.iter as f64, d.cost, a.cost])
        .collect();
    let p = write_csv(
        "results/fig3b_convergence.csv",
        &["iter", "J_dp", "J_dal"],
        &rows_b,
    )
    .expect("csv");
    println!("wrote {p}\n");

    // ---- fig 3a: control profiles ----
    let xs = problem.control_x();
    let rows_a: Vec<Vec<f64>> = (0..xs.len())
        .map(|i| {
            vec![
                xs[i],
                dp.control[i],
                dal.control[i],
                analytic::series_c_star(xs[i]),
                analytic::paper_c_star(xs[i]),
            ]
        })
        .collect();
    print_series(
        "fig 3a: controls c(x) [x, DP, DAL, series c*, paper printed c*]",
        &["x", "c_dp", "c_dal", "c_series", "c_paper"],
        &rows_a
            .iter()
            .step_by((xs.len() / 12).max(1))
            .cloned()
            .collect::<Vec<_>>(),
    );
    let p = write_csv(
        "results/fig3a_controls.csv",
        &["x", "c_dp", "c_dal", "c_series", "c_paper"],
        &rows_a,
    )
    .expect("csv");
    println!("wrote {p}\n");

    // ---- fig 3f/3g: state error vs the analytic state ----
    let ne = 40;
    let mut pts = Vec::new();
    for i in 0..ne {
        for j in 0..ne {
            pts.push(Point2::new(
                (i as f64 + 0.5) / ne as f64,
                (j as f64 + 0.5) / ne as f64,
            ));
        }
    }
    let coeffs = problem.solve_coeffs(&dp.control).expect("solve");
    let state = problem.eval_state(&coeffs, &pts);
    let exact = DVec::from_fn(pts.len(), |k| analytic::series_u_star(pts[k].x, pts[k].y));
    let err = &state - &exact;
    println!("-- fig 3f/3g: DP state vs analytic state --");
    println!(
        "L2 error = {:.3e}   Linf error = {:.3e}   (field L2 norm {:.3e})",
        err.rms(),
        err.norm_inf(),
        exact.rms()
    );
    let rows_fg: Vec<Vec<f64>> = pts
        .iter()
        .enumerate()
        .map(|(k, q)| vec![q.x, q.y, state[k], exact[k], err[k].abs()])
        .collect();
    let p = write_csv(
        "results/fig3fg_state_error.csv",
        &["x", "y", "u_dp", "u_exact", "abs_err"],
        &rows_fg,
    )
    .expect("csv");
    println!("wrote {p}");
}
