//! Ablations backing the paper's in-text claims (see DESIGN.md §4/§6).
//!
//! Subcommands (default: run all):
//!
//! * `re` — DAL vs DP across Reynolds numbers (paper §3.2: DAL's failure
//!   "is lessened with a reduced Re = 10").
//! * `refinements` — DP tape memory/time vs refinement count `k` (Table 3
//!   discussion: "scales super-linearly with k").
//! * `kernels` — Laplace DP final cost per RBF kernel (§3 opening).
//! * `optimizer` — Adam vs plain SGD for DAL on Laplace (§3: Adam rescues
//!   DAL's noisy boundary gradients).
//! * `conditioning` — grid vs scattered collocation conditioning (§3.1).
//! * `gradients` — gradient accuracy of DP/DAL/FD against a tight
//!   central-difference oracle (footnote 11).

use bench::write_csv;
use control::laplace::{run_ctx as laplace_run, GradMethod, LaplaceRunConfig};
use control::ns::{initial_control, run_ctx as ns_run, NsRunConfig};
use control::RunCtx;
use geometry::generators::{unit_square_scattered, ChannelConfig};
use geometry::{NodeKind, Point2};
use linalg::{DVec, Lu};
use opt::{Optimizer, Schedule, Sgd};
use pde::ns_dp::NsDp;
use pde::{LaplaceControlProblem, NsConfig, NsSolver};
use rbf::{operators::fit_matrix, PolyBasis, RbfKernel};

fn ablation_re() {
    println!("== ablation: DAL vs DP across Reynolds numbers ==");
    println!("(paper: DAL fails at Re = 100, improves at Re = 10; DP works at both)\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "Re", "J_initial", "J_dal", "J_dp"
    );
    let mut rows = Vec::new();
    for re in [10.0, 30.0, 100.0] {
        let solver = NsSolver::new(NsConfig {
            channel: ChannelConfig {
                h: 0.13,
                ..Default::default()
            },
            re,
            ..Default::default()
        })
        .expect("solver");
        let j0 = {
            let c0 = initial_control(&solver);
            let st = solver.solve(&c0, 12, None).expect("solve");
            solver.cost(&st)
        };
        let cfg = NsRunConfig {
            iterations: 40,
            refinements: 5,
            lr: 5e-2,
            log_every: 10,
            initial_scale: 1.0,
        };
        let dal = ns_run(&solver, &cfg, GradMethod::Dal, &RunCtx::unchecked()).expect("dal");
        let dp = ns_run(&solver, &cfg, GradMethod::Dp, &RunCtx::unchecked()).expect("dp");
        println!(
            "{re:>6} {j0:>12.3e} {:>12.3e} {:>12.3e}",
            dal.report.final_cost, dp.report.final_cost
        );
        rows.push(vec![re, j0, dal.report.final_cost, dp.report.final_cost]);
    }
    write_csv(
        "results/ablation_re.csv",
        &["re", "j0", "j_dal", "j_dp"],
        &rows,
    )
    .ok();
    println!();
}

fn ablation_refinements() {
    println!("== ablation: DP cost vs refinement count k ==");
    println!("(paper: \"computational complexity scales super-linearly with k\")\n");
    let solver = NsSolver::new(NsConfig {
        channel: ChannelConfig {
            h: 0.13,
            ..Default::default()
        },
        re: 50.0,
        ..Default::default()
    })
    .expect("solver");
    let dp = NsDp::new(&solver);
    let c = initial_control(&solver);
    println!(
        "{:>4} {:>12} {:>14} {:>12}",
        "k", "time (ms)", "tape (MB)", "tape nodes"
    );
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8, 16] {
        let t = std::time::Instant::now();
        let (_, _, stats) = dp.cost_and_grad(&c, k, None).expect("dp");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "{k:>4} {ms:>12.1} {:>14.2} {:>12}",
            stats.tape_bytes as f64 / 1e6,
            stats.tape_nodes
        );
        rows.push(vec![
            k as f64,
            ms,
            stats.tape_bytes as f64 / 1e6,
            stats.tape_nodes as f64,
        ]);
    }
    write_csv(
        "results/ablation_refinements.csv",
        &["k", "time_ms", "tape_mb", "tape_nodes"],
        &rows,
    )
    .ok();
    println!();
}

fn ablation_kernels() {
    println!("== ablation: RBF kernel choice on the Laplace problem ==");
    println!("(paper §3: PHS r^3 + degree-1 polynomials chosen to avoid shape tuning)\n");
    println!(
        "{:>22} {:>12} {:>14}",
        "kernel", "J_dp(150it)", "cond estimate"
    );
    let mut rows = Vec::new();
    for (name, kernel, id) in [
        ("phs3", RbfKernel::Phs3, 0.0),
        ("phs5", RbfKernel::Phs5, 1.0),
        ("gaussian(eps=3)", RbfKernel::Gaussian(3.0), 2.0),
        ("multiquadric(eps=2)", RbfKernel::Multiquadric(2.0), 3.0),
        (
            "inv-multiquadric(2)",
            RbfKernel::InverseMultiquadric(2.0),
            4.0,
        ),
    ] {
        match LaplaceControlProblem::with_kernel(16, kernel, 1) {
            Ok(p) => {
                let cfg = LaplaceRunConfig {
                    nx: 16,
                    iterations: 150,
                    lr: 1e-2,
                    log_every: 50,
                    ..Default::default()
                };
                let cond = p.condition_estimate();
                match laplace_run(&p, &cfg, GradMethod::Dp, &RunCtx::unchecked()) {
                    Ok(r) => {
                        println!("{name:>22} {:>12.3e} {cond:>14.3e}", r.report.final_cost);
                        rows.push(vec![id, r.report.final_cost, cond]);
                    }
                    Err(e) => println!("{name:>22} {:>12} ({e})", "run failed"),
                }
            }
            Err(e) => println!("{name:>22} {:>12} ({e})", "singular"),
        }
    }
    write_csv(
        "results/ablation_kernels.csv",
        &["kernel_id", "j_dp", "cond"],
        &rows,
    )
    .ok();
    println!();
}

fn ablation_optimizer() {
    println!("== ablation: Adam vs plain SGD for DAL on Laplace ==");
    println!("(paper §3: Adam gave \"robustness to noisy gradients at boundaries\")\n");
    let p = LaplaceControlProblem::new(20).expect("problem");
    let iters = 200;
    // Adam path: the standard driver.
    let adam = laplace_run(
        &p,
        &LaplaceRunConfig {
            nx: 20,
            iterations: iters,
            lr: 1e-2,
            log_every: 50,
            ..Default::default()
        },
        GradMethod::Dal,
        &RunCtx::unchecked(),
    )
    .expect("adam run");
    // SGD path: same gradients, plain descent.
    let n = p.n_controls();
    let mut c = DVec::zeros(n);
    let mut sgd = Sgd::new(n, Schedule::paper_decay(1e-2, iters));
    let mut diverged = false;
    for _ in 0..iters {
        let (_, g) = p.cost_and_grad_dal(&c).expect("grad");
        sgd.step(&mut c, &g);
        if c.has_non_finite() || c.norm_inf() > 1e6 {
            diverged = true;
            break;
        }
    }
    let j_sgd = if diverged {
        f64::INFINITY
    } else {
        p.cost(&c).expect("cost")
    };
    println!("DAL + Adam : J = {:.3e}", adam.report.final_cost);
    println!(
        "DAL + SGD  : J = {:.3e}{}",
        j_sgd,
        if diverged { "  (diverged)" } else { "" }
    );
    println!(
        "=> Adam {} SGD on this problem\n",
        if adam.report.final_cost < j_sgd {
            "beats"
        } else {
            "does not beat"
        }
    );
}

fn ablation_conditioning() {
    println!("== ablation: grid vs scattered cloud conditioning ==");
    println!("(paper §3.1: the regular grid \"resulted in better conditioned\ncollocation matrices compared with a scattered point cloud of the same size\")\n");
    let classify = |p: Point2| {
        let normal = if p.y == 0.0 {
            Point2::new(0.0, -1.0)
        } else if p.y == 1.0 {
            Point2::new(0.0, 1.0)
        } else if p.x == 0.0 {
            Point2::new(-1.0, 0.0)
        } else {
            Point2::new(1.0, 0.0)
        };
        (NodeKind::Dirichlet, 1, normal)
    };
    for n_side in [8usize, 12, 16] {
        let grid = geometry::generators::unit_square_grid(n_side, n_side, classify);
        let scattered = unit_square_scattered((n_side - 2) * (n_side - 2), n_side, classify);
        let cond = |ns: &geometry::NodeSet| -> f64 {
            let a = fit_matrix(ns, RbfKernel::Phs3, PolyBasis::new(1));
            match Lu::factor(&a) {
                Ok(lu) => lu.cond_1_estimate(a.norm_1()),
                Err(_) => f64::INFINITY,
            }
        };
        println!(
            "n = {:>4}:  grid cond ~ {:.3e}   scattered cond ~ {:.3e}",
            grid.len(),
            cond(&grid),
            cond(&scattered)
        );
    }
    println!();
}

fn ablation_gradients() {
    println!("== ablation: gradient accuracy (DP vs DAL vs FD) ==");
    println!("(footnote 11: FD \"was efficient in providing accurate gradients\")\n");
    let p = LaplaceControlProblem::new(16).expect("problem");
    let c = DVec::from_fn(p.n_controls(), |i| {
        0.2 * (std::f64::consts::PI * p.control_x()[i]).sin()
    });
    // Oracle: tight central differences.
    let (_, g_oracle) = p.cost_and_grad_fd(&c, 1e-7).expect("oracle");
    let (_, g_dp) = p.cost_and_grad_dp(&c).expect("dp");
    let (_, g_fd) = p.cost_and_grad_fd(&c, 1e-5).expect("fd");
    let (_, g_dal_fn) = p.cost_and_grad_dal(&c).expect("dal");
    // Weight DAL's function-space gradient for comparability.
    let w = p.quad_weights();
    let g_dal = DVec::from_fn(g_dal_fn.len(), |i| g_dal_fn[i] * w[i]);
    let rel = |g: &DVec| -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..g.len() {
            num += (g[i] - g_oracle[i]) * (g[i] - g_oracle[i]);
            den += g_oracle[i] * g_oracle[i];
        }
        (num / den).sqrt()
    };
    println!("relative error vs tight-FD oracle:");
    println!(
        "  DP  : {:.3e}   (exact discrete gradient; error = oracle noise)",
        rel(&g_dp)
    );
    println!("  FD  : {:.3e}", rel(&g_fd));
    println!(
        "  DAL : {:.3e}   (OTD bias — the paper's central observation)",
        rel(&g_dal)
    );
    println!();
}

fn ablation_sparse() {
    println!("== ablation: dense global collocation vs sparse RBF-FD ==");
    println!("(the memory-light path the paper's Table 3 discussion motivates)\n");
    use pde::laplace_fd::LaplaceFdProblem;
    use rbf::fd::FdConfig;
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>12}",
        "nx", "dense bytes", "sparse bytes", "J_dense", "J_sparse"
    );
    let mut rows = Vec::new();
    for nx in [16usize, 24, 32] {
        let t_dense = std::time::Instant::now();
        let dense = LaplaceControlProblem::new(nx).expect("dense");
        let _ = t_dense;
        let n = nx * nx;
        let dense_bytes = (n + 3) * (n + 3) * 8;
        let fd = LaplaceFdProblem::new(
            nx,
            FdConfig {
                stencil_size: 13,
                degree: 2,
            },
        )
        .expect("sparse");
        let sparse_bytes = fd.nnz() * 16;
        // One short optimization on each to compare attainable costs.
        let cfg = LaplaceRunConfig {
            nx,
            iterations: 120,
            lr: 1e-2,
            log_every: 40,
            ..Default::default()
        };
        let j_dense = laplace_run(&dense, &cfg, GradMethod::Dp, &RunCtx::unchecked())
            .expect("dense run")
            .report
            .final_cost;
        let mut c = DVec::zeros(fd.n_controls());
        let mut adam = opt::Adam::new(c.len(), Schedule::paper_decay(1e-2, 120));
        for _ in 0..120 {
            let (_, g) = fd.cost_and_grad(&c).expect("sparse grad");
            adam.step(&mut c, &g);
        }
        let j_sparse = fd.cost(&c).expect("sparse cost");
        println!("{nx:>6} {dense_bytes:>14} {sparse_bytes:>14} {j_dense:>12.3e} {j_sparse:>12.3e}");
        rows.push(vec![
            nx as f64,
            dense_bytes as f64,
            sparse_bytes as f64,
            j_dense,
            j_sparse,
        ]);
    }
    write_csv(
        "results/ablation_sparse.csv",
        &["nx", "dense_bytes", "sparse_bytes", "j_dense", "j_sparse"],
        &rows,
    )
    .ok();
    println!();
}

fn ablation_heat() {
    println!("== extension: DP through time (heat-equation control) ==");
    println!("(the paper's future work: \"incorporate time\"; one shared LU, cheap tape)\n");
    use pde::heat::{HeatConfig, HeatControlProblem};
    println!(
        "{:>8} {:>14} {:>12} {:>12}",
        "steps", "tape (KB)", "J_initial", "J_final"
    );
    let mut rows = Vec::new();
    for n_steps in [10usize, 20, 40] {
        let p = HeatControlProblem::new(HeatConfig {
            nx: 12,
            n_steps,
            ..Default::default()
        })
        .expect("heat");
        let mut c = DVec::zeros(p.n_controls());
        let (j0, _, bytes) = p.cost_and_grad_dp(&c).expect("grad");
        let iters = 120;
        let mut adam = opt::Adam::new(c.len(), Schedule::paper_decay(5e-2, iters));
        for _ in 0..iters {
            let (_, g, _) = p.cost_and_grad_dp(&c).expect("grad");
            adam.step(&mut c, &g);
        }
        let j = p.cost(&c).expect("cost");
        println!(
            "{n_steps:>8} {:>14.1} {j0:>12.3e} {j:>12.3e}",
            bytes as f64 / 1e3
        );
        rows.push(vec![n_steps as f64, bytes as f64, j0, j]);
    }
    write_csv(
        "results/ablation_heat.csv",
        &["steps", "tape_bytes", "j0", "j_final"],
        &rows,
    )
    .ok();
    println!();
}

fn ablation_layouts() {
    println!("== ablation: grid vs scattered layout for the Laplace control run ==");
    println!("(paper §3.1: the grid was chosen for conditioning; same optimum shape)\n");
    let cfg = LaplaceRunConfig {
        nx: 16,
        iterations: 200,
        lr: 1e-2,
        log_every: 50,
        ..Default::default()
    };
    let grid = LaplaceControlProblem::new(16).expect("grid");
    let scat = LaplaceControlProblem::new_scattered(14 * 14, 16).expect("scattered");
    let rg = laplace_run(&grid, &cfg, GradMethod::Dp, &RunCtx::unchecked()).expect("grid run");
    let rs = laplace_run(&scat, &cfg, GradMethod::Dp, &RunCtx::unchecked()).expect("scattered run");
    println!(
        "grid      : J = {:.3e}   cond ~ {:.3e}",
        rg.report.final_cost,
        grid.condition_estimate()
    );
    println!(
        "scattered : J = {:.3e}   cond ~ {:.3e}",
        rs.report.final_cost,
        scat.condition_estimate()
    );
    println!();
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "re" => ablation_re(),
        "refinements" => ablation_refinements(),
        "kernels" => ablation_kernels(),
        "optimizer" => ablation_optimizer(),
        "conditioning" => ablation_conditioning(),
        "gradients" => ablation_gradients(),
        "sparse" => ablation_sparse(),
        "heat" => ablation_heat(),
        "layouts" => ablation_layouts(),
        _ => {
            ablation_gradients();
            ablation_conditioning();
            ablation_kernels();
            ablation_optimizer();
            ablation_sparse();
            ablation_heat();
            ablation_layouts();
            ablation_refinements();
            ablation_re();
        }
    }
}
