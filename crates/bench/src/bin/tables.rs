//! Prints Tables 1 and 2 — the hyperparameter summaries — side by side:
//! the paper's values and this reproduction's laptop-scale defaults.
//!
//! (These tables are configuration, not measurements; `table3_perf`
//! regenerates the performance table.)

fn row(name: &str, dal: &str, pinn: &str, dp: &str) {
    println!("{name:<28} {dal:>14} {pinn:>14} {dp:>14}");
}

fn main() {
    println!("== Table 1: Laplace problem hyperparameters ==\n");
    println!("{:<28} {:>14} {:>14} {:>14}", "", "DAL", "PINN", "DP");
    println!("--- paper (100 x 100 grid) ---");
    row("init. learning rate", "1e-2", "1e-3", "1e-2");
    row("epochs", "-", "20k", "-");
    row("network architecture", "-", "3 x 30", "-");
    row("iterations", "500", "-", "500");
    row("point cloud size", "1e4", "1e4", "1e4");
    row("max poly degree n", "1", "-", "1");
    println!("--- this reproduction (defaults; all sizes are parameters) ---");
    row("init. learning rate", "1e-2", "1e-3", "1e-2");
    row("epochs", "-", "1.2k-2k", "-");
    row("network architecture", "-", "3 x 30", "-");
    row("iterations", "300", "-", "300");
    row("point cloud size", "24x24", "600+4x48", "24x24");
    row("max poly degree n", "1", "-", "1");
    row("kernel", "PHS r^3", "-", "PHS r^3");
    row("schedule", "/10 @50,75%", "/10 @50,75%", "/10 @50,75%");

    println!("\n== Table 2: Navier-Stokes problem hyperparameters ==\n");
    println!("{:<28} {:>14} {:>14} {:>14}", "", "DAL", "PINN", "DP");
    println!("--- paper (1385-node GMSH cloud, Re = 100) ---");
    row("init. learning rate", "1e-1", "1e-3", "1e-1");
    row("network architecture", "-", "5 x 50", "-");
    row("epochs", "-", "100k", "-");
    row("iterations", "350", "-", "350");
    row("refinements k", "3", "-", "10");
    row("point cloud size", "1385", "1385", "1385");
    row("max poly degree n", "1", "-", "1");
    println!("--- this reproduction (defaults) ---");
    row("init. learning rate", "1e-1", "1e-3", "1e-1");
    row("network architecture", "-", "3 x 32", "-");
    row("epochs", "-", "1.5k", "-");
    row("iterations", "60-80", "-", "60-80");
    row("refinements k", "3", "-", "10");
    row("point cloud size", "~h=0.11", "400+5x24", "~h=0.11");
    row("max poly degree n", "1", "-", "1");
    row("stabilisation", "nu+=0.4h", "none", "nu+=0.4h");
    println!(
        "\nNote: the PINN solves the physical PDE (nu = 1/Re); the RBF solvers add the\n\
         artificial upwind viscosity documented in DESIGN.md section 5 (coarse-cloud\n\
         stabilisation)."
    );
}
