//! The Navier–Stokes ω line search (paper §3.2: "The line search strategy
//! explored 9 values for ω from 1e−3 to 1e5, settling on ω* = 1").
//!
//! Usage: `fig4_linesearch [epochs1] [epochs2] [n_omegas]`
//! (defaults 2500, 1200, 9).

use bench::write_csv;
use control::pinn_ns::{line_search_ns, NsPinnConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let epochs1: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2500);
    let epochs2: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1200);
    let n_omegas: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(9);
    // The paper's NS range: 1e-3 … 1e5 in decades.
    let omegas: Vec<f64> = (0..n_omegas).map(|k| 10f64.powi(k as i32 - 3)).collect();
    println!(
        "== NS ω line search: {} ω values, epochs {epochs1}/{epochs2} ==",
        omegas.len()
    );
    println!("(paper: 9 values 1e-3…1e5, winner ω* = 1)\n");

    let cfg = NsPinnConfig {
        epochs_step1: epochs1,
        epochs_step2: epochs2,
        ..Default::default()
    };
    let ls = line_search_ns(&cfg, &omegas);

    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "omega", "L_pde (s1)", "J (s1)", "L_pde (s2)", "J (s2)"
    );
    let mut rows = Vec::new();
    for r in &ls.results {
        println!(
            "{:>10.1e} {:>14.3e} {:>14.3e} {:>14.3e} {:>14.3e}",
            r.omega, r.l_pde_step1, r.j_step1, r.l_pde_step2, r.j_step2
        );
        rows.push(vec![
            r.omega,
            r.l_pde_step1,
            r.j_step1,
            r.l_pde_step2,
            r.j_step2,
        ]);
    }
    println!(
        "\nselected ω* = {:.1e} with J = {:.3e}",
        ls.results[ls.best].omega, ls.results[ls.best].j_step2
    );
    let p = write_csv(
        "results/fig4_linesearch.csv",
        &["omega", "l_pde_s1", "j_s1", "l_pde_s2", "j_s2"],
        &rows,
    )
    .expect("csv");
    println!("wrote {p}");
}
