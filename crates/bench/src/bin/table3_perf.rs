//! Regenerates Table 3: wall time, peak memory, iterations/epochs and final
//! cost for each method on each problem.
//!
//! The tracking allocator is installed as the global allocator so the
//! "peak mem" column reflects actual allocation high-water marks per run
//! (reset between runs); the DP rows additionally report the tape-resident
//! bytes (LU caches + node values), which is the quantity whose growth the
//! paper attributes DP's memory cost to.
//!
//! Usage: `table3_perf [nx_laplace] [iters_laplace] [h_ns] [iters_ns] [pinn_epochs]`
//! (defaults 32, 400, 0.12, 60, 4000).

use control::laplace::{self, GradMethod, LaplaceRunConfig};
use control::metrics::{peak_allocated_bytes, reset_peak, RunReport};
use control::ns::{self, NsRunConfig};
use control::pinn::{LaplacePinn, PinnConfig};
use control::pinn_ns::{NsPinn, NsPinnConfig};
use control::RunCtx;
use geometry::generators::ChannelConfig;
use pde::{LaplaceControlProblem, NsConfig, NsSolver};

#[global_allocator]
static ALLOC: control::metrics::TrackingAllocator = control::metrics::TrackingAllocator;

struct Row {
    problem: String,
    method: String,
    time_s: f64,
    peak_mb: f64,
    iters: usize,
    final_j: f64,
}

fn report_to_row(r: &RunReport, peak_mb: f64) -> Row {
    Row {
        problem: r.problem.clone(),
        method: r.method.clone(),
        time_s: r.wall_s,
        peak_mb,
        iters: r.iterations,
        final_j: r.final_cost,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nx: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let laplace_iters: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
    let h: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.12);
    let ns_iters: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(60);
    let pinn_epochs: usize = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(4000);

    let mut rows: Vec<Row> = Vec::new();

    // ---------- Laplace ----------
    println!("running Laplace: DAL, DP, PINN ...");
    let problem = LaplaceControlProblem::new(nx).expect("laplace assembly");
    let lcfg = LaplaceRunConfig {
        nx,
        iterations: laplace_iters,
        lr: 1e-2,
        log_every: 50,
        ..Default::default()
    };
    for method in [GradMethod::Dal, GradMethod::Dp] {
        reset_peak();
        let run =
            laplace::run_ctx(&problem, &lcfg, method, &RunCtx::unchecked()).expect("laplace run");
        rows.push(report_to_row(
            &run.report,
            peak_allocated_bytes() as f64 / 1e6,
        ));
    }
    {
        reset_peak();
        let t = control::metrics::Timer::start();
        let mut pinn = LaplacePinn::new(PinnConfig {
            epochs_step1: pinn_epochs,
            epochs_step2: 2 * pinn_epochs,
            ..Default::default()
        });
        pinn.train(1.0, pinn_epochs, true); // ω* at this scale (paper: 1e-1 at its scale)
        pinn.reset_solution_network(99);
        // Step 2 needs the larger share of the budget (footnote 6 of the
        // paper: retrain u' "at least until it matches c_θ").
        pinn.train(0.0, 2 * pinn_epochs, false);
        let parts = pinn.loss_parts();
        rows.push(Row {
            problem: "laplace".to_string(),
            method: "PINN".to_string(),
            time_s: t.elapsed_s(),
            peak_mb: peak_allocated_bytes() as f64 / 1e6,
            iters: 3 * pinn_epochs,
            final_j: parts.j,
        });
    }

    // ---------- Navier–Stokes ----------
    println!("running Navier-Stokes: DAL (k=3), DP (k=10), PINN ...");
    let solver = NsSolver::new(NsConfig {
        channel: ChannelConfig {
            h,
            ..Default::default()
        },
        re: 100.0,
        ..Default::default()
    })
    .expect("ns assembly");
    for (method, k) in [(GradMethod::Dal, 3usize), (GradMethod::Dp, 10)] {
        reset_peak();
        let run = ns::run_ctx(
            &solver,
            &NsRunConfig {
                iterations: ns_iters,
                refinements: k,
                lr: 1e-1,
                log_every: 10,
                initial_scale: 1.0,
            },
            method,
            &RunCtx::unchecked(),
        )
        .expect("ns run");
        rows.push(report_to_row(
            &run.report,
            (peak_allocated_bytes().max(run.report.peak_bytes)) as f64 / 1e6,
        ));
    }
    {
        reset_peak();
        let t = control::metrics::Timer::start();
        let mut pinn = NsPinn::new(NsPinnConfig {
            channel: solver.cfg().channel.clone(),
            re: 100.0,
            slot_velocity: solver.cfg().slot_velocity,
            epochs_step1: pinn_epochs,
            epochs_step2: pinn_epochs / 2,
            ..Default::default()
        });
        pinn.train(1.0, pinn_epochs, true); // omega* = 1 per the paper
        pinn.reset_field_network(99);
        pinn.train(0.0, pinn_epochs / 2, false);
        let parts = pinn.loss_parts();
        rows.push(Row {
            problem: "navier-stokes".to_string(),
            method: "PINN".to_string(),
            time_s: t.elapsed_s(),
            peak_mb: peak_allocated_bytes() as f64 / 1e6,
            iters: pinn_epochs + pinn_epochs / 2,
            final_j: parts.j,
        });
    }

    // ---------- Print the table ----------
    println!("\n== Table 3 (reproduction) ==\n");
    println!(
        "{:<15} {:<6} {:>10} {:>12} {:>10} {:>12}",
        "problem", "method", "time (s)", "peak (MB)", "iters", "final J"
    );
    for r in &rows {
        println!(
            "{:<15} {:<6} {:>10.2} {:>12.1} {:>10} {:>12.3e}",
            r.problem, r.method, r.time_s, r.peak_mb, r.iters, r.final_j
        );
    }
    println!("\n== Table 3 (paper, for shape comparison) ==\n");
    println!("laplace        DAL      3.3 h      33.6 GB       500      4.6e-3");
    println!("laplace        PINN     7.3 h*      5.0 GB       20k      1.6e-2");
    println!("laplace        DP       1.65 h     20.2 GB       500      2.2e-9");
    println!("navier-stokes  DAL      1.5 h       8.1 GB       350      8.2e-2");
    println!("navier-stokes  PINN    26.8 h*      1.3 GB      100k      1.0e-3");
    println!("navier-stokes  DP       3.8 h      45.3 GB       350      2.6e-4");
    println!("\n(*: paper's PINN trained on an RTX 3090; everything here is CPU.)");
    println!(
        "\nShape checks: DP should post the lowest J on both problems; DAL should be\n\
         cheapest per-iteration on NS but end highest; the PINN should need the most\n\
         epochs; DP should show the largest peak memory on NS (tape LU caches x k)."
    );
}
