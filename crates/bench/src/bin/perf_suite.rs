//! The hot-path perf suite behind `BENCH_perf.json`.
//!
//! Times the named kernels of the meshfree substrate (dense LU factor and
//! solve, sparse SpMV, RBF-FD assembly, preconditioned GMRES, one DAL and
//! one DP Laplace gradient iteration, one Navier–Stokes Picard sweep) with
//! warmup + median-of-N repetitions ([`meshfree_runtime::stats`]) and
//! serialises the results through the same hand-rolled JSON layer as the
//! golden snapshots ([`check::golden::GoldenSnapshot`]).
//!
//! Per kernel the snapshot carries `<kernel>.median_ns`, `<kernel>.nodes`
//! (problem size) and `<kernel>.iters` (timed repetitions), plus the global
//! `threads` scalar and two derived ratios: `dal_laplace_factor_reuse_speedup`
//! — the cached-factorisation DAL iteration versus the refactor-every-call
//! baseline (`cost_and_grad_dal_uncached`) — `newton_vs_adam_iter` — how
//! many times fewer outer iterations Newton-CG needs than Adam to reach the
//! Adam-DAL final cost on the fig. 3 Laplace problem (hard-gated at ≥ 5×) —
//! and `neural_op_vs_dp_eval` — one frozen-surrogate cost + gradient versus
//! one DP solve-and-differentiate iteration (hard-gated at ≥ 10×; the
//! amortization claim behind `Strategy::NeuralOp`).
//!
//! Usage:
//!
//! ```text
//! perf_suite [--quick] [--out PATH] [--baseline PATH] [--verify PATH]
//! ```
//!
//! * `--quick` — smaller problems / fewer reps (the CI smoke mode)
//! * `--out PATH` — write the snapshot to PATH (default `BENCH_perf.json`)
//! * `--baseline P` — soft regression report against a previous snapshot
//!   (prints ratios; never fails the run)
//! * `--verify PATH` — no timing: check that PATH parses and contains every
//!   required kernel entry; exit 1 otherwise (the CI gate for the committed
//!   trajectory file)

use check::golden::GoldenSnapshot;
use control::api::{BackendKind, ProblemSpec, RunCtx};
use control::laplace::{self, GradMethod, LaplaceRunConfig};
use control::ns::initial_control;
use control::surrogate::{LaplaceSurrogate, SurrogateSpec};
use control::OptimizerKind;
use geometry::generators::unit_square_grid;
use linalg::iterative::{gmres, IterOpts, Preconditioner};
use linalg::sparse::Triplets;
use linalg::{DMat, DVec, LinearBackend, Lu, SparseIterative};
use meshfree_runtime::{num_threads, time_kernel, Rng64, SpanStats};
use pde::{LaplaceControlProblem, NsConfig, NsSolver};
use rbf::fd::{fd_matrix, FdConfig};
use rbf::{DiffOp, RbfKernel};
use serve::FactorCache;
use std::f64::consts::PI;
use std::process::ExitCode;

/// Every kernel a well-formed `BENCH_perf.json` must carry.
const REQUIRED_KERNELS: &[&str] = &[
    "lu_factor",
    "lu_solve",
    "spmv",
    "rbf_fd_assembly",
    "csr_assembly_fd",
    "gmres",
    "gmres_ilu0_laplace",
    "dal_laplace_iter",
    "dal_laplace_iter_refactor",
    "dp_laplace_iter",
    "neural_op_eval",
    "hvp_laplace",
    "dal_laplace_newton",
    "serve_cache_hit_laplace",
    "serve_cache_miss_laplace",
    "ns_picard_sweep",
    "ns_saddle_assembly_fd",
    "gmres_schur_ns",
];

struct Sizes {
    /// Dense LU dimension.
    lu_n: usize,
    /// Unit-square grid side for the sparse/RBF-FD kernels.
    fd_nx: usize,
    /// Laplace control grid side.
    laplace_nx: usize,
    /// NS channel spacing.
    ns_h: f64,
    warmup: usize,
    reps: usize,
}

impl Sizes {
    fn full() -> Sizes {
        Sizes {
            lu_n: 400,
            fd_nx: 40,
            laplace_nx: 24,
            ns_h: 0.14,
            warmup: 2,
            reps: 9,
        }
    }

    fn quick() -> Sizes {
        Sizes {
            lu_n: 120,
            fd_nx: 20,
            laplace_nx: 12,
            ns_h: 0.2,
            warmup: 1,
            reps: 3,
        }
    }
}

fn record(snap: GoldenSnapshot, kernel: &str, nodes: usize, s: SpanStats) -> GoldenSnapshot {
    println!(
        "{kernel:>28}  n={nodes:<6} median {:>12} ns  (min {}, max {}, {} reps)",
        s.median_ns, s.min_ns, s.max_ns, s.iters
    );
    snap.scalar(&format!("{kernel}.median_ns"), s.median_ns as f64)
        .scalar(&format!("{kernel}.nodes"), nodes as f64)
        .scalar(&format!("{kernel}.iters"), s.iters as f64)
}

fn run_suite(sz: &Sizes) -> GoldenSnapshot {
    let mut snap = GoldenSnapshot::new("perf_suite").scalar("threads", num_threads() as f64);

    // ---- dense LU: factor + solve --------------------------------------
    let n = sz.lu_n;
    let mut rng = Rng64::seed_from_u64(42);
    let mut a = DMat::zeros(n, n);
    rng.fill_uniform(a.as_mut_slice(), -1.0..1.0);
    // Diagonal dominance keeps the pivoting path honest but well-scaled.
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    let b = DVec::from_fn(n, |i| (i as f64 * 0.37).sin());
    snap = record(
        snap,
        "lu_factor",
        n,
        time_kernel(sz.warmup, sz.reps, || {
            let lu = Lu::factor(&a).expect("lu_factor");
            std::hint::black_box(&lu);
        }),
    );
    let lu = Lu::factor(&a).expect("lu_factor");
    let mut x = DVec::zeros(0);
    snap = record(
        snap,
        "lu_solve",
        n,
        time_kernel(sz.warmup, sz.reps.max(15), || {
            lu.solve_into(&b, &mut x).expect("lu_solve");
            std::hint::black_box(&x);
        }),
    );

    // ---- RBF-FD assembly + SpMV + GMRES --------------------------------
    let nodes = unit_square_grid(sz.fd_nx, sz.fd_nx, LaplaceControlProblem::classifier);
    let fd_cfg = FdConfig::default();
    snap = record(
        snap,
        "rbf_fd_assembly",
        nodes.len(),
        time_kernel(sz.warmup, sz.reps, || {
            let m = fd_matrix(&nodes, RbfKernel::Phs3, fd_cfg, DiffOp::Lap).expect("assembly");
            std::hint::black_box(&m);
        }),
    );
    let lap = fd_matrix(&nodes, RbfKernel::Phs3, fd_cfg, DiffOp::Lap).expect("assembly");
    let v = DVec::from_fn(nodes.len(), |i| (i as f64 * 0.11).cos());
    snap = record(
        snap,
        "spmv",
        nodes.len(),
        time_kernel(sz.warmup, sz.reps.max(15), || {
            let y = lap.matvec(&v);
            std::hint::black_box(&y);
        }),
    );
    // The RBF-FD nodal Laplace system behind `BackendKind::SparseGmres`:
    // interior Laplacian rows, identity boundary rows — first the
    // triplet→CSR conversion, then the preconditioned solve itself.
    let assemble_laplace = || {
        let mut t = Triplets::new(nodes.len(), nodes.len());
        for i in nodes.interior_range() {
            let (cols, vals) = lap.row(i);
            for (&j, &w) in cols.iter().zip(vals) {
                t.push(i, j, w);
            }
        }
        for i in nodes.boundary_indices() {
            t.push(i, i, 1.0);
        }
        t.to_csr()
    };
    snap = record(
        snap,
        "csr_assembly_fd",
        nodes.len(),
        time_kernel(sz.warmup, sz.reps.max(15), || {
            let a = assemble_laplace();
            std::hint::black_box(&a);
        }),
    );
    let a_lap = assemble_laplace();
    let m_lap = Preconditioner::ilu0_from(&a_lap);
    let opts_lap = IterOpts::gmres().max_iter(2000).tol(1e-10).restart(60);
    let b_lap = DVec::from_fn(nodes.len(), |i| (PI * nodes.point(i).x).sin());
    snap = record(
        snap,
        "gmres_ilu0_laplace",
        nodes.len(),
        time_kernel(sz.warmup, sz.reps, || {
            let r = gmres(&a_lap, &b_lap, &m_lap, &opts_lap).expect("gmres_ilu0_laplace");
            std::hint::black_box(&r.x);
        }),
    );

    // Implicit heat step I − τ∇²: diagonally dominant for small τ, the
    // canonical well-posed system for the sparse Krylov path.
    let h = 1.0 / (sz.fd_nx.max(2) - 1) as f64;
    let tau = 0.25 * h * h;
    let mut t = Triplets::new(nodes.len(), nodes.len());
    for i in 0..nodes.len() {
        t.push(i, i, 1.0);
        let (cols, vals) = lap.row(i);
        for (&j, &w) in cols.iter().zip(vals) {
            t.push(i, j, -tau * w);
        }
    }
    let heat = t.to_csr();
    let rhs = DVec::from_fn(nodes.len(), |i| 1.0 + (i as f64 * 0.05).sin());
    let pre = Preconditioner::ilu0_from(&heat);
    let opts = IterOpts::gmres().max_iter(400).tol(1e-8).restart(30);
    snap = record(
        snap,
        "gmres",
        nodes.len(),
        time_kernel(sz.warmup, sz.reps, || {
            let r = gmres(&heat, &rhs, &pre, &opts).expect("gmres");
            std::hint::black_box(&r.x);
        }),
    );

    // ---- Laplace control gradient iterations ---------------------------
    let problem = LaplaceControlProblem::new(sz.laplace_nx).expect("laplace assembly");
    let c = DVec::from_fn(problem.n_controls(), |i| {
        0.3 * (PI * problem.control_x()[i]).sin()
    });
    let n_c = problem.n_controls();
    let dal = time_kernel(sz.warmup, sz.reps, || {
        let r = problem.cost_and_grad_dal(&c).expect("dal");
        std::hint::black_box(&r);
    });
    snap = record(snap, "dal_laplace_iter", n_c, dal);
    let dal_refactor = time_kernel(sz.warmup, sz.reps, || {
        let r = problem
            .cost_and_grad_dal_uncached(&c)
            .expect("dal uncached");
        std::hint::black_box(&r);
    });
    snap = record(snap, "dal_laplace_iter_refactor", n_c, dal_refactor);
    let speedup = dal_refactor.median_ns as f64 / dal.median_ns.max(1) as f64;
    println!("{:>28}  {speedup:.2}x", "dal factor-reuse speedup");
    snap = snap.scalar("dal_laplace_factor_reuse_speedup", speedup);
    let dp = time_kernel(sz.warmup, sz.reps, || {
        let r = problem.cost_and_grad_dp(&c).expect("dp");
        std::hint::black_box(&r);
    });
    snap = record(snap, "dp_laplace_iter", n_c, dp);

    // ---- amortized control: frozen-surrogate objective evaluation ------
    // Train once (untimed — the training cost is amortized across every
    // later evaluation), then time one objective evaluation through the
    // frozen network against one through the PDE solver — the same
    // comparison the serve daemon's `eval` vs `neural-eval` request kinds
    // expose. The measured gap is the entire case for
    // `Strategy::NeuralOp`, hard-gated at >= 10x both here and at
    // `--verify` time.
    let surrogate =
        LaplaceSurrogate::train(&problem, &SurrogateSpec::default(), 0).expect("surrogate train");
    let neural = time_kernel(sz.warmup, sz.reps.max(15), || {
        let j = surrogate.cost(&c);
        std::hint::black_box(j);
    });
    snap = record(snap, "neural_op_eval", n_c, neural);
    let dp_eval = time_kernel(sz.warmup, sz.reps.max(15), || {
        let j = problem.cost(&c).expect("dp eval");
        std::hint::black_box(j);
    });
    let amortized = dp_eval.median_ns as f64 / neural.median_ns.max(1) as f64;
    println!("{:>28}  {amortized:.2}x", "neural-op vs dp eval");
    assert!(
        amortized >= 10.0,
        "a frozen-surrogate evaluation must be at least 10x faster than a PDE-solve \
         evaluation (measured {amortized:.2}x)"
    );
    snap = snap.scalar("neural_op_vs_dp_eval", amortized);

    // ---- forward-over-reverse Hessian-vector product --------------------
    // One cost + gradient + exact HVP through the cached factorization:
    // the dual tape replays the forward solve with (re, eps) pairs, so the
    // marginal cost over a plain DP gradient is a second pair of
    // triangular solves — no refactorisation.
    let v_hvp = DVec::from_fn(n_c, |i| 0.5 * ((i as f64) * 0.7).cos() - 0.1);
    snap = record(
        snap,
        "hvp_laplace",
        n_c,
        time_kernel(sz.warmup, sz.reps, || {
            let r = problem.cost_grad_hvp(&c, &v_hvp).expect("hvp");
            std::hint::black_box(&r);
        }),
    );

    // ---- second-order DAL: Newton-CG vs Adam iteration counts -----------
    // The fig. 3 Laplace DAL problem solved twice over the same operator:
    // the paper's 150-iteration Adam loop, then Newton-CG on the
    // quadrature-weighted adjoint gradient. `newton_vs_adam_iter` is how
    // many times fewer outer iterations Newton-CG needs to reach (or beat)
    // Adam's final cost — the acceptance gate for the second-order
    // machinery, enforced both here and at `--verify` time.
    let adam_cfg = LaplaceRunConfig {
        nx: sz.laplace_nx,
        iterations: 150,
        lr: 1e-2,
        log_every: 150,
        optimizer: OptimizerKind::Adam,
    };
    let adam = laplace::run_ctx(&problem, &adam_cfg, GradMethod::Dal, &RunCtx::unchecked())
        .expect("adam dal run");
    let newton_cfg = LaplaceRunConfig {
        iterations: 20,
        log_every: 1,
        optimizer: OptimizerKind::NewtonCg,
        ..adam_cfg.clone()
    };
    let run_newton = || {
        laplace::run_ctx(&problem, &newton_cfg, GradMethod::Dal, &RunCtx::unchecked())
            .expect("newton-cg dal run")
    };
    snap = record(
        snap,
        "dal_laplace_newton",
        n_c,
        time_kernel(1, sz.reps.min(5), || {
            let r = run_newton();
            std::hint::black_box(&r.report.final_cost);
        }),
    );
    let newton = run_newton();
    // History entry `iter = k` holds the cost after k optimizer steps, so
    // the first entry at or below Adam's floor gives iterations-to-target.
    let newton_iters = newton
        .report
        .history
        .entries
        .iter()
        .find(|e| e.cost <= adam.report.final_cost)
        .map(|e| e.iter.max(1))
        .unwrap_or_else(|| {
            panic!(
                "Newton-CG DAL never reached the Adam-DAL cost {:.3e} within {} iterations \
                 (got {:.3e})",
                adam.report.final_cost, newton_cfg.iterations, newton.report.final_cost
            )
        });
    let newton_vs_adam = adam_cfg.iterations as f64 / newton_iters as f64;
    println!(
        "{:>28}  {newton_vs_adam:.2}x  ({} vs {} iters to J = {:.3e})",
        "newton vs adam iterations", newton_iters, adam_cfg.iterations, adam.report.final_cost
    );
    assert!(
        newton_vs_adam >= 5.0,
        "Newton-CG must reach the Adam-DAL final cost in at least 5x fewer iterations \
         (measured {newton_vs_adam:.2}x)"
    );
    snap = snap.scalar("newton_vs_adam_iter", newton_vs_adam);

    // ---- serve request latency: factorization-cache hit vs miss --------
    // One "request" = cache lookup + one objective evaluation against the
    // prepared operator. A miss pays the O(N³) assembly + factorization;
    // a hit pays only the O(N²) triangular solves — the asymmetry the
    // serve daemon amortizes across clients.
    let spec = ProblemSpec::Laplace {
        nx: sz.laplace_nx,
        backend: BackendKind::DenseLu,
    };
    let eval_request = |cache: &FactorCache| {
        let (built, _) = cache.get_or_build(&spec).expect("cache build");
        let Some(p) = built.laplace() else {
            unreachable!("a laplace spec builds a laplace problem")
        };
        let cost = p.cost(&c).expect("serve eval");
        std::hint::black_box(cost);
    };
    let warm = FactorCache::new(usize::MAX);
    eval_request(&warm); // populate: every timed rep below is a hit
    let hit = time_kernel(sz.warmup, sz.reps.max(15), || eval_request(&warm));
    snap = record(snap, "serve_cache_hit_laplace", n_c, hit);
    let miss = time_kernel(sz.warmup, sz.reps, || {
        eval_request(&FactorCache::new(usize::MAX)) // fresh cache every rep
    });
    snap = record(snap, "serve_cache_miss_laplace", n_c, miss);
    let cache_speedup = miss.median_ns as f64 / hit.median_ns.max(1) as f64;
    println!("{:>28}  {cache_speedup:.2}x", "serve cache-hit speedup");
    assert!(
        cache_speedup >= 5.0,
        "cache-hit requests must be at least 5x faster than cold builds \
         (measured {cache_speedup:.2}x)"
    );
    snap = snap.scalar("serve_cache_hit_speedup", cache_speedup);

    // ---- one NS Picard sweep (workspace path) --------------------------
    let solver = NsSolver::new(NsConfig {
        channel: geometry::generators::ChannelConfig {
            h: sz.ns_h,
            ..Default::default()
        },
        re: 50.0,
        slot_velocity: 0.2,
        ..Default::default()
    })
    .expect("ns assembly");
    let c_ns = initial_control(&solver);
    let state = solver.solve(&c_ns, 3, None).expect("ns warm state");
    let mut ws = solver.workspace();
    snap = record(
        snap,
        "ns_picard_sweep",
        solver.nodes().len(),
        time_kernel(sz.warmup, sz.reps, || {
            let next = solver.refine_with(&state, &c_ns, &mut ws).expect("picard");
            std::hint::black_box(&next);
        }),
    );

    // ---- sparse NS: saddle assembly + Schur-preconditioned GMRES -------
    // The per-sweep costs of the RBF-FD saddle path: composing the 3×3
    // block-CSR Picard operator from the constant operator set (row
    // scaling + a sparse add, never a dense matrix), then one coupled
    // solve through block-ILU(0) + SIMPLE-Schur GMRES.
    let sparse_solver = NsSolver::new(NsConfig {
        channel: geometry::generators::ChannelConfig {
            h: sz.ns_h,
            ..Default::default()
        },
        re: 50.0,
        slot_velocity: 0.2,
        backend: BackendKind::SparseGmres,
        ..Default::default()
    })
    .expect("sparse ns assembly");
    let c_sp = initial_control(&sparse_solver);
    let state_sp = sparse_solver
        .solve(&c_sp, 3, None)
        .expect("sparse ns warm state");
    snap = record(
        snap,
        "ns_saddle_assembly_fd",
        sparse_solver.nodes().len(),
        time_kernel(sz.warmup, sz.reps.max(15), || {
            let blocks = sparse_solver.picard_blocks(&state_sp);
            std::hint::black_box(&blocks);
        }),
    );
    let blocks = sparse_solver.picard_blocks(&state_sp);
    let be = SparseIterative::gmres_saddle(&blocks, NsSolver::sparse_opts());
    let b_ns = sparse_solver.rhs(&c_sp);
    snap = record(
        snap,
        "gmres_schur_ns",
        sparse_solver.nodes().len(),
        time_kernel(sz.warmup, sz.reps, || {
            let x = be.solve(&b_ns).expect("gmres_schur_ns");
            std::hint::black_box(&x);
        }),
    );
    snap
}

/// Validates a written snapshot: parseable, and every required kernel has a
/// finite positive `median_ns`. Returns the offending messages.
fn verify_snapshot(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let snap = match GoldenSnapshot::from_json(text) {
        Ok(s) => s,
        Err(e) => return vec![format!("unparseable snapshot: {e}")],
    };
    if snap.get_scalar("threads").is_none() {
        problems.push("missing scalar: threads".to_string());
    }
    for k in REQUIRED_KERNELS {
        match snap.get_scalar(&format!("{k}.median_ns")) {
            None => problems.push(format!("missing kernel entry: {k}.median_ns")),
            Some(v) if !v.is_finite() || v <= 0.0 => {
                problems.push(format!("bad median for {k}: {v}"))
            }
            Some(_) => {}
        }
        if snap.get_scalar(&format!("{k}.iters")).is_none() {
            problems.push(format!("missing kernel entry: {k}.iters"));
        }
    }
    match snap.get_scalar("serve_cache_hit_speedup") {
        None => problems.push("missing scalar: serve_cache_hit_speedup".to_string()),
        Some(v) if !v.is_finite() || v < 5.0 => {
            problems.push(format!("serve_cache_hit_speedup {v} is below the 5x gate"))
        }
        Some(_) => {}
    }
    match snap.get_scalar("newton_vs_adam_iter") {
        None => problems.push("missing scalar: newton_vs_adam_iter".to_string()),
        Some(v) if !v.is_finite() || v < 5.0 => {
            problems.push(format!("newton_vs_adam_iter {v} is below the 5x gate"))
        }
        Some(_) => {}
    }
    match snap.get_scalar("neural_op_vs_dp_eval") {
        None => problems.push("missing scalar: neural_op_vs_dp_eval".to_string()),
        Some(v) if !v.is_finite() || v < 10.0 => {
            problems.push(format!("neural_op_vs_dp_eval {v} is below the 10x gate"))
        }
        Some(_) => {}
    }
    problems
}

/// Soft regression report: new median vs baseline median per kernel.
fn baseline_report(new: &GoldenSnapshot, baseline_text: &str) {
    let base = match GoldenSnapshot::from_json(baseline_text) {
        Ok(s) => s,
        Err(e) => {
            println!("baseline unparseable ({e}); skipping regression report");
            return;
        }
    };
    println!("\n# regression report (new / baseline, soft)");
    for k in REQUIRED_KERNELS {
        let key = format!("{k}.median_ns");
        match (new.get_scalar(&key), base.get_scalar(&key)) {
            (Some(n), Some(b)) if b > 0.0 => {
                let ratio = n / b;
                let flag = if ratio > 1.25 {
                    "  <-- REGRESSION?"
                } else {
                    ""
                };
                println!("{k:>28}  {ratio:>6.2}x{flag}");
            }
            _ => println!("{k:>28}  (no baseline entry)"),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_perf.json".to_string();
    let mut baseline: Option<String> = None;
    let mut verify: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            "--baseline" => {
                i += 1;
                baseline = Some(args.get(i).expect("--baseline needs a path").clone());
            }
            "--verify" => {
                i += 1;
                verify = Some(args.get(i).expect("--verify needs a path").clone());
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if let Some(path) = verify {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perf_suite --verify: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let problems = verify_snapshot(&text);
        if problems.is_empty() {
            println!("perf_suite --verify: {path} OK");
            return ExitCode::SUCCESS;
        }
        for p in &problems {
            eprintln!("perf_suite --verify: {p}");
        }
        return ExitCode::FAILURE;
    }

    let sz = if quick { Sizes::quick() } else { Sizes::full() };
    let snap = run_suite(&sz);
    if let Some(path) = baseline {
        match std::fs::read_to_string(&path) {
            Ok(text) => baseline_report(&snap, &text),
            Err(e) => println!("no baseline at {path} ({e}); skipping report"),
        }
    }
    let json = snap.to_json();
    // Self-check before writing: never commit a malformed trajectory file.
    let problems = verify_snapshot(&json);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("perf_suite: produced invalid snapshot: {p}");
        }
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("perf_suite: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");
    ExitCode::SUCCESS
}
