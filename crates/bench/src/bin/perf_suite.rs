//! The hot-path perf suite behind `BENCH_perf.json`.
//!
//! Times the named kernels of the meshfree substrate (dense LU factor and
//! solve, sparse SpMV, RBF-FD assembly, preconditioned GMRES, one DAL and
//! one DP Laplace gradient iteration, one Navier–Stokes Picard sweep) with
//! warmup + median-of-N repetitions ([`meshfree_runtime::stats`]) and
//! serialises the results through the same hand-rolled JSON layer as the
//! golden snapshots ([`check::golden::GoldenSnapshot`]).
//!
//! Per kernel the snapshot carries `<kernel>.median_ns`, `<kernel>.nodes`
//! (problem size) and `<kernel>.iters` (timed repetitions), plus the global
//! `threads` scalar and two derived ratios: `dal_laplace_factor_reuse_speedup`
//! — the cached-factorisation DAL iteration versus the refactor-every-call
//! baseline (`cost_and_grad_dal_uncached`) — `newton_vs_adam_iter` — how
//! many times fewer outer iterations Newton-CG needs than Adam to reach the
//! Adam-DAL final cost on the fig. 3 Laplace problem (hard-gated at ≥ 5×) —
//! and `neural_op_vs_dp_eval` — one frozen-surrogate cost + gradient versus
//! one DP solve-and-differentiate iteration (hard-gated at ≥ 10×; the
//! amortization claim behind `Strategy::NeuralOp`).
//!
//! The suite additionally sweeps the blocked dense kernels (`lu_factor`,
//! `matmul`, `gmres_ilu0_laplace`) over pool widths {1, 2, 8}, recording
//! `<kernel>.t<w>.median_ns` per width plus derived
//! `<kernel>_speedup_8t` / `<kernel>_scaling_eff_8t` ratios and the
//! measuring machine's `host_threads`. Two of those numbers are hard
//! gates, enforced both when measuring and at `verify` time:
//!
//! * `lu_factor.t1.median_ns` must beat the committed pre-blocking
//!   baseline ([`LU_FACTOR_BASELINE_NS`]) by at least
//!   [`LU_T1_IMPROVEMENT`]× — the single-thread win of the tiled kernels;
//! * `lu_factor_speedup_8t` must clear a scaling floor derived from the
//!   snapshot's own `host_threads` ([`speedup_floor_8t`]): a genuine
//!   ≥2× scaling requirement on ≥8-core machines, degrading to a
//!   0.5× pool-overhead sanity bound on single-core runners (where no
//!   true speedup is physically possible).
//!
//! Usage:
//!
//! ```text
//! perf_suite measure [--quick] [--out PATH] [--baseline PATH]
//! perf_suite sweep  [--quick] [--threads 1,2,8] [--out PATH]
//! perf_suite verify PATH
//! ```
//!
//! * `measure` — time every kernel (thread sweep included) and write the
//!   snapshot (default `BENCH_perf.json`); `--quick` shrinks the
//!   non-swept problems / rep counts (the CI smoke mode — the swept
//!   dense kernels always run at full size so the gates stay
//!   comparable), `--baseline P` prints a soft regression report against
//!   a previous snapshot (ratios only; never fails the run).
//! * `sweep` — run only the thread sweep, writing a `perf_sweep`
//!   snapshot (default `BENCH_sweep.json`); `--threads` takes a comma
//!   list of pool widths.
//! * `verify` — no timing: check that PATH parses, carries every
//!   required entry, and clears every hard gate; exit 1 otherwise (the
//!   CI gate for the committed trajectory file). Accepts both
//!   `perf_suite` and `perf_sweep` snapshots.
//!
//! The pre-subcommand spellings (`--quick`, `--out`, `--baseline`,
//! `--verify PATH` at top level) keep working as hidden aliases for
//! `measure` / `verify`.

use check::golden::GoldenSnapshot;
use control::api::{BackendKind, ProblemSpec, RunCtx};
use control::laplace::{self, GradMethod, LaplaceRunConfig};
use control::ns::initial_control;
use control::surrogate::{LaplaceSurrogate, SurrogateSpec};
use control::OptimizerKind;
use geometry::generators::unit_square_grid;
use linalg::iterative::{gmres, IterOpts, Preconditioner};
use linalg::sparse::Triplets;
use linalg::{DMat, DVec, LinearBackend, Lu, SparseIterative};
use meshfree_runtime::par::{with_pool, ThreadPool};
use meshfree_runtime::{num_threads, time_kernel, Rng64, SpanStats};
use pde::{LaplaceControlProblem, NsConfig, NsSolver};
use rbf::fd::{fd_matrix, FdConfig};
use rbf::{DiffOp, RbfKernel};
use serve::FactorCache;
use std::f64::consts::PI;
use std::process::ExitCode;

/// Every kernel a well-formed `BENCH_perf.json` must carry.
const REQUIRED_KERNELS: &[&str] = &[
    "lu_factor",
    "lu_solve",
    "matmul",
    "spmv",
    "rbf_fd_assembly",
    "csr_assembly_fd",
    "gmres",
    "gmres_ilu0_laplace",
    "dal_laplace_iter",
    "dal_laplace_iter_refactor",
    "dp_laplace_iter",
    "neural_op_eval",
    "hvp_laplace",
    "dal_laplace_newton",
    "serve_cache_hit_laplace",
    "serve_cache_miss_laplace",
    "ns_picard_sweep",
    "ns_saddle_assembly_fd",
    "gmres_schur_ns",
];

/// Kernels the thread sweep re-times at every pool width.
const SWEPT_KERNELS: &[&str] = &["lu_factor", "matmul", "gmres_ilu0_laplace"];

/// Pool widths the sweep visits by default.
const SWEEP_THREADS_DEFAULT: &[usize] = &[1, 2, 8];

/// Committed single-thread `lu_factor` median (n = 400) from the last
/// pre-blocking `BENCH_perf.json` — the fixed reference the tiled kernel
/// is gated against.
const LU_FACTOR_BASELINE_NS: f64 = 8.713273e6;

/// Required single-thread improvement of the tiled LU over
/// [`LU_FACTOR_BASELINE_NS`].
const LU_T1_IMPROVEMENT: f64 = 1.5;

/// Scaling floor for `lu_factor_speedup_8t`, derived from the measuring
/// machine's core count: `max(0.5, 0.25 · min(8, host_threads))`. On an
/// 8-core (or wider) host that demands a genuine ≥2× speedup at 8
/// workers; on a single-core runner — where no true speedup is
/// physically possible — it degrades to a 0.5× bound that still catches
/// pathological pool overhead.
fn speedup_floor_8t(host_threads: f64) -> f64 {
    (0.25 * host_threads.min(8.0)).max(0.5)
}

fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

struct Sizes {
    /// Dense LU dimension.
    lu_n: usize,
    /// Unit-square grid side for the sparse/RBF-FD kernels.
    fd_nx: usize,
    /// Laplace control grid side.
    laplace_nx: usize,
    /// NS channel spacing.
    ns_h: f64,
    warmup: usize,
    reps: usize,
}

impl Sizes {
    fn full() -> Sizes {
        Sizes {
            lu_n: 400,
            fd_nx: 40,
            laplace_nx: 24,
            ns_h: 0.14,
            warmup: 2,
            reps: 9,
        }
    }

    fn quick() -> Sizes {
        Sizes {
            lu_n: 120,
            fd_nx: 20,
            laplace_nx: 12,
            ns_h: 0.2,
            warmup: 1,
            reps: 3,
        }
    }
}

/// The RBF-FD nodal Laplace system behind `BackendKind::SparseGmres`:
/// interior Laplacian rows, identity boundary rows. Shared by the main
/// suite and the thread sweep so both time the same operator.
fn laplace_fd_csr(nodes: &geometry::NodeSet, lap: &linalg::Csr) -> linalg::Csr {
    let mut t = Triplets::new(nodes.len(), nodes.len());
    for i in nodes.interior_range() {
        let (cols, vals) = lap.row(i);
        for (&j, &w) in cols.iter().zip(vals) {
            t.push(i, j, w);
        }
    }
    for i in nodes.boundary_indices() {
        t.push(i, i, 1.0);
    }
    t.to_csr()
}

/// Times the swept dense kernels at every requested pool width,
/// recording `<kernel>.t<w>.median_ns` plus the derived speedup and
/// scaling-efficiency scalars, and (when widths 1 and 8 are both swept)
/// asserting the two hard gates. The dense problems always run at full
/// size — and every sweep timing at the full warmup/rep counts — so the
/// gated medians are comparable (and noise-robust) across `--quick` and
/// full runs; only the sparse GMRES problem size follows `sz` (it gates
/// nothing).
fn run_sweep(threads: &[usize], sz: &Sizes, mut snap: GoldenSnapshot) -> GoldenSnapshot {
    let host = host_threads();
    snap = snap.scalar("host_threads", host as f64);

    let full = Sizes::full();
    let n = full.lu_n;
    let mut rng = Rng64::seed_from_u64(42);
    let mut a = DMat::zeros(n, n);
    rng.fill_uniform(a.as_mut_slice(), -1.0..1.0);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    let mut bm = DMat::zeros(n, n);
    rng.fill_uniform(bm.as_mut_slice(), -1.0..1.0);

    let nodes = unit_square_grid(sz.fd_nx, sz.fd_nx, LaplaceControlProblem::classifier);
    let lap = fd_matrix(&nodes, RbfKernel::Phs3, FdConfig::default(), DiffOp::Lap)
        .expect("sweep assembly");
    let a_lap = laplace_fd_csr(&nodes, &lap);
    let m_lap = Preconditioner::ilu0_from(&a_lap);
    let opts_lap = IterOpts::gmres().max_iter(2000).tol(1e-10).restart(60);
    let b_lap = DVec::from_fn(nodes.len(), |i| (PI * nodes.point(i).x).sin());

    type SweepKernel<'a> = (&'a str, usize, Box<dyn FnMut() + 'a>);
    let mut kernels: Vec<SweepKernel> = vec![
        (
            "lu_factor",
            n,
            Box::new(|| {
                let lu = Lu::factor(&a).expect("sweep lu_factor");
                std::hint::black_box(&lu);
            }),
        ),
        (
            "matmul",
            n,
            Box::new(|| {
                let c = a.matmul(&bm).expect("sweep matmul");
                std::hint::black_box(&c);
            }),
        ),
        (
            "gmres_ilu0_laplace",
            nodes.len(),
            Box::new(|| {
                let r = gmres(&a_lap, &b_lap, &m_lap, &opts_lap).expect("sweep gmres");
                std::hint::black_box(&r.x);
            }),
        ),
    ];

    let mut medians: Vec<(String, usize, f64)> = Vec::new();
    for &t in threads {
        let pool = std::sync::Arc::new(ThreadPool::new(t));
        for (name, size, body) in kernels.iter_mut() {
            let stats = with_pool(&pool, || time_kernel(full.warmup, full.reps, &mut *body));
            println!(
                "{:>28}  n={size:<6} median {:>12} ns  ({} threads)",
                format!("{name}.t{t}"),
                stats.median_ns,
                t
            );
            snap = snap.scalar(&format!("{name}.t{t}.median_ns"), stats.median_ns as f64);
            medians.push((name.to_string(), t, stats.median_ns as f64));
        }
    }

    let median_of = |name: &str, t: usize| {
        medians
            .iter()
            .find(|(k, w, _)| k == name && *w == t)
            .map(|&(_, _, m)| m)
    };
    for &name in SWEPT_KERNELS {
        let Some(t1) = median_of(name, 1) else {
            continue;
        };
        if let Some(t2) = median_of(name, 2) {
            snap = snap.scalar(&format!("{name}_speedup_2t"), t1 / t2.max(1.0));
        }
        if let Some(t8) = median_of(name, 8) {
            let speedup = t1 / t8.max(1.0);
            let eff = speedup / (host.min(8) as f64).max(1.0);
            println!(
                "{:>28}  {speedup:.2}x (efficiency {eff:.2})",
                format!("{name} 8t speedup")
            );
            snap = snap
                .scalar(&format!("{name}_speedup_8t"), speedup)
                .scalar(&format!("{name}_scaling_eff_8t"), eff);
        }
    }

    if let (Some(t1), Some(speedup)) = (
        snap.get_scalar("lu_factor.t1.median_ns"),
        snap.get_scalar("lu_factor_speedup_8t"),
    ) {
        assert!(
            t1 <= LU_FACTOR_BASELINE_NS / LU_T1_IMPROVEMENT,
            "single-thread lu_factor ({t1} ns) must beat the committed pre-blocking \
             baseline ({LU_FACTOR_BASELINE_NS} ns) by >= {LU_T1_IMPROVEMENT}x"
        );
        let floor = speedup_floor_8t(host as f64);
        assert!(
            speedup >= floor,
            "lu_factor_speedup_8t ({speedup:.2}) is below the scaling floor {floor:.2} \
             for a {host}-core host"
        );
    }
    snap
}

fn record(snap: GoldenSnapshot, kernel: &str, nodes: usize, s: SpanStats) -> GoldenSnapshot {
    println!(
        "{kernel:>28}  n={nodes:<6} median {:>12} ns  (min {}, max {}, {} reps)",
        s.median_ns, s.min_ns, s.max_ns, s.iters
    );
    snap.scalar(&format!("{kernel}.median_ns"), s.median_ns as f64)
        .scalar(&format!("{kernel}.nodes"), nodes as f64)
        .scalar(&format!("{kernel}.iters"), s.iters as f64)
}

fn run_suite(sz: &Sizes) -> GoldenSnapshot {
    let mut snap = GoldenSnapshot::new("perf_suite").scalar("threads", num_threads() as f64);

    // ---- dense LU: factor + solve --------------------------------------
    let n = sz.lu_n;
    let mut rng = Rng64::seed_from_u64(42);
    let mut a = DMat::zeros(n, n);
    rng.fill_uniform(a.as_mut_slice(), -1.0..1.0);
    // Diagonal dominance keeps the pivoting path honest but well-scaled.
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    let b = DVec::from_fn(n, |i| (i as f64 * 0.37).sin());
    snap = record(
        snap,
        "lu_factor",
        n,
        time_kernel(sz.warmup, sz.reps, || {
            let lu = Lu::factor(&a).expect("lu_factor");
            std::hint::black_box(&lu);
        }),
    );
    let lu = Lu::factor(&a).expect("lu_factor");
    let mut x = DVec::zeros(0);
    snap = record(
        snap,
        "lu_solve",
        n,
        time_kernel(sz.warmup, sz.reps.max(15), || {
            lu.solve_into(&b, &mut x).expect("lu_solve");
            std::hint::black_box(&x);
        }),
    );
    let mut bm = DMat::zeros(n, n);
    rng.fill_uniform(bm.as_mut_slice(), -1.0..1.0);
    snap = record(
        snap,
        "matmul",
        n,
        time_kernel(sz.warmup, sz.reps, || {
            let c = a.matmul(&bm).expect("matmul");
            std::hint::black_box(&c);
        }),
    );

    // ---- RBF-FD assembly + SpMV + GMRES --------------------------------
    let nodes = unit_square_grid(sz.fd_nx, sz.fd_nx, LaplaceControlProblem::classifier);
    let fd_cfg = FdConfig::default();
    snap = record(
        snap,
        "rbf_fd_assembly",
        nodes.len(),
        time_kernel(sz.warmup, sz.reps, || {
            let m = fd_matrix(&nodes, RbfKernel::Phs3, fd_cfg, DiffOp::Lap).expect("assembly");
            std::hint::black_box(&m);
        }),
    );
    let lap = fd_matrix(&nodes, RbfKernel::Phs3, fd_cfg, DiffOp::Lap).expect("assembly");
    let v = DVec::from_fn(nodes.len(), |i| (i as f64 * 0.11).cos());
    snap = record(
        snap,
        "spmv",
        nodes.len(),
        time_kernel(sz.warmup, sz.reps.max(15), || {
            let y = lap.matvec(&v);
            std::hint::black_box(&y);
        }),
    );
    // First the triplet→CSR conversion ([`laplace_fd_csr`]), then the
    // preconditioned solve itself.
    snap = record(
        snap,
        "csr_assembly_fd",
        nodes.len(),
        time_kernel(sz.warmup, sz.reps.max(15), || {
            let a = laplace_fd_csr(&nodes, &lap);
            std::hint::black_box(&a);
        }),
    );
    let a_lap = laplace_fd_csr(&nodes, &lap);
    let m_lap = Preconditioner::ilu0_from(&a_lap);
    let opts_lap = IterOpts::gmres().max_iter(2000).tol(1e-10).restart(60);
    let b_lap = DVec::from_fn(nodes.len(), |i| (PI * nodes.point(i).x).sin());
    snap = record(
        snap,
        "gmres_ilu0_laplace",
        nodes.len(),
        time_kernel(sz.warmup, sz.reps, || {
            let r = gmres(&a_lap, &b_lap, &m_lap, &opts_lap).expect("gmres_ilu0_laplace");
            std::hint::black_box(&r.x);
        }),
    );

    // Implicit heat step I − τ∇²: diagonally dominant for small τ, the
    // canonical well-posed system for the sparse Krylov path.
    let h = 1.0 / (sz.fd_nx.max(2) - 1) as f64;
    let tau = 0.25 * h * h;
    let mut t = Triplets::new(nodes.len(), nodes.len());
    for i in 0..nodes.len() {
        t.push(i, i, 1.0);
        let (cols, vals) = lap.row(i);
        for (&j, &w) in cols.iter().zip(vals) {
            t.push(i, j, -tau * w);
        }
    }
    let heat = t.to_csr();
    let rhs = DVec::from_fn(nodes.len(), |i| 1.0 + (i as f64 * 0.05).sin());
    let pre = Preconditioner::ilu0_from(&heat);
    let opts = IterOpts::gmres().max_iter(400).tol(1e-8).restart(30);
    snap = record(
        snap,
        "gmres",
        nodes.len(),
        time_kernel(sz.warmup, sz.reps, || {
            let r = gmres(&heat, &rhs, &pre, &opts).expect("gmres");
            std::hint::black_box(&r.x);
        }),
    );

    // ---- Laplace control gradient iterations ---------------------------
    let problem = LaplaceControlProblem::new(sz.laplace_nx).expect("laplace assembly");
    let c = DVec::from_fn(problem.n_controls(), |i| {
        0.3 * (PI * problem.control_x()[i]).sin()
    });
    let n_c = problem.n_controls();
    let dal = time_kernel(sz.warmup, sz.reps, || {
        let r = problem.cost_and_grad_dal(&c).expect("dal");
        std::hint::black_box(&r);
    });
    snap = record(snap, "dal_laplace_iter", n_c, dal);
    let dal_refactor = time_kernel(sz.warmup, sz.reps, || {
        let r = problem
            .cost_and_grad_dal_uncached(&c)
            .expect("dal uncached");
        std::hint::black_box(&r);
    });
    snap = record(snap, "dal_laplace_iter_refactor", n_c, dal_refactor);
    let speedup = dal_refactor.median_ns as f64 / dal.median_ns.max(1) as f64;
    println!("{:>28}  {speedup:.2}x", "dal factor-reuse speedup");
    snap = snap.scalar("dal_laplace_factor_reuse_speedup", speedup);
    let dp = time_kernel(sz.warmup, sz.reps, || {
        let r = problem.cost_and_grad_dp(&c).expect("dp");
        std::hint::black_box(&r);
    });
    snap = record(snap, "dp_laplace_iter", n_c, dp);

    // ---- amortized control: frozen-surrogate objective evaluation ------
    // Train once (untimed — the training cost is amortized across every
    // later evaluation), then time one objective evaluation through the
    // frozen network against one through the PDE solver — the same
    // comparison the serve daemon's `eval` vs `neural-eval` request kinds
    // expose. The measured gap is the entire case for
    // `Strategy::NeuralOp`, hard-gated at >= 10x both here and at
    // `--verify` time.
    let surrogate =
        LaplaceSurrogate::train(&problem, &SurrogateSpec::default(), 0).expect("surrogate train");
    let neural = time_kernel(sz.warmup, sz.reps.max(15), || {
        let j = surrogate.cost(&c);
        std::hint::black_box(j);
    });
    snap = record(snap, "neural_op_eval", n_c, neural);
    let dp_eval = time_kernel(sz.warmup, sz.reps.max(15), || {
        let j = problem.cost(&c).expect("dp eval");
        std::hint::black_box(j);
    });
    let amortized = dp_eval.median_ns as f64 / neural.median_ns.max(1) as f64;
    println!("{:>28}  {amortized:.2}x", "neural-op vs dp eval");
    assert!(
        amortized >= 10.0,
        "a frozen-surrogate evaluation must be at least 10x faster than a PDE-solve \
         evaluation (measured {amortized:.2}x)"
    );
    snap = snap.scalar("neural_op_vs_dp_eval", amortized);

    // ---- forward-over-reverse Hessian-vector product --------------------
    // One cost + gradient + exact HVP through the cached factorization:
    // the dual tape replays the forward solve with (re, eps) pairs, so the
    // marginal cost over a plain DP gradient is a second pair of
    // triangular solves — no refactorisation.
    let v_hvp = DVec::from_fn(n_c, |i| 0.5 * ((i as f64) * 0.7).cos() - 0.1);
    snap = record(
        snap,
        "hvp_laplace",
        n_c,
        time_kernel(sz.warmup, sz.reps, || {
            let r = problem.cost_grad_hvp(&c, &v_hvp).expect("hvp");
            std::hint::black_box(&r);
        }),
    );

    // ---- second-order DAL: Newton-CG vs Adam iteration counts -----------
    // The fig. 3 Laplace DAL problem solved twice over the same operator:
    // the paper's 150-iteration Adam loop, then Newton-CG on the
    // quadrature-weighted adjoint gradient. `newton_vs_adam_iter` is how
    // many times fewer outer iterations Newton-CG needs to reach (or beat)
    // Adam's final cost — the acceptance gate for the second-order
    // machinery, enforced both here and at `--verify` time.
    let adam_cfg = LaplaceRunConfig {
        nx: sz.laplace_nx,
        iterations: 150,
        lr: 1e-2,
        log_every: 150,
        optimizer: OptimizerKind::Adam,
    };
    let adam = laplace::run_ctx(&problem, &adam_cfg, GradMethod::Dal, &RunCtx::unchecked())
        .expect("adam dal run");
    let newton_cfg = LaplaceRunConfig {
        iterations: 20,
        log_every: 1,
        optimizer: OptimizerKind::NewtonCg,
        ..adam_cfg.clone()
    };
    let run_newton = || {
        laplace::run_ctx(&problem, &newton_cfg, GradMethod::Dal, &RunCtx::unchecked())
            .expect("newton-cg dal run")
    };
    snap = record(
        snap,
        "dal_laplace_newton",
        n_c,
        time_kernel(1, sz.reps.min(5), || {
            let r = run_newton();
            std::hint::black_box(&r.report.final_cost);
        }),
    );
    let newton = run_newton();
    // History entry `iter = k` holds the cost after k optimizer steps, so
    // the first entry at or below Adam's floor gives iterations-to-target.
    let newton_iters = newton
        .report
        .history
        .entries
        .iter()
        .find(|e| e.cost <= adam.report.final_cost)
        .map(|e| e.iter.max(1))
        .unwrap_or_else(|| {
            panic!(
                "Newton-CG DAL never reached the Adam-DAL cost {:.3e} within {} iterations \
                 (got {:.3e})",
                adam.report.final_cost, newton_cfg.iterations, newton.report.final_cost
            )
        });
    let newton_vs_adam = adam_cfg.iterations as f64 / newton_iters as f64;
    println!(
        "{:>28}  {newton_vs_adam:.2}x  ({} vs {} iters to J = {:.3e})",
        "newton vs adam iterations", newton_iters, adam_cfg.iterations, adam.report.final_cost
    );
    assert!(
        newton_vs_adam >= 5.0,
        "Newton-CG must reach the Adam-DAL final cost in at least 5x fewer iterations \
         (measured {newton_vs_adam:.2}x)"
    );
    snap = snap.scalar("newton_vs_adam_iter", newton_vs_adam);

    // ---- serve request latency: factorization-cache hit vs miss --------
    // One "request" = cache lookup + one objective evaluation against the
    // prepared operator. A miss pays the O(N³) assembly + factorization;
    // a hit pays only the O(N²) triangular solves — the asymmetry the
    // serve daemon amortizes across clients.
    let spec = ProblemSpec::Laplace {
        nx: sz.laplace_nx,
        backend: BackendKind::DenseLu,
    };
    let eval_request = |cache: &FactorCache| {
        let (built, _) = cache.get_or_build(&spec).expect("cache build");
        let Some(p) = built.laplace() else {
            unreachable!("a laplace spec builds a laplace problem")
        };
        let cost = p.cost(&c).expect("serve eval");
        std::hint::black_box(cost);
    };
    let warm = FactorCache::new(usize::MAX);
    eval_request(&warm); // populate: every timed rep below is a hit
    let hit = time_kernel(sz.warmup, sz.reps.max(15), || eval_request(&warm));
    snap = record(snap, "serve_cache_hit_laplace", n_c, hit);
    let miss = time_kernel(sz.warmup, sz.reps, || {
        eval_request(&FactorCache::new(usize::MAX)) // fresh cache every rep
    });
    snap = record(snap, "serve_cache_miss_laplace", n_c, miss);
    let cache_speedup = miss.median_ns as f64 / hit.median_ns.max(1) as f64;
    println!("{:>28}  {cache_speedup:.2}x", "serve cache-hit speedup");
    assert!(
        cache_speedup >= 5.0,
        "cache-hit requests must be at least 5x faster than cold builds \
         (measured {cache_speedup:.2}x)"
    );
    snap = snap.scalar("serve_cache_hit_speedup", cache_speedup);

    // ---- one NS Picard sweep (workspace path) --------------------------
    let solver = NsSolver::new(NsConfig {
        channel: geometry::generators::ChannelConfig {
            h: sz.ns_h,
            ..Default::default()
        },
        re: 50.0,
        slot_velocity: 0.2,
        ..Default::default()
    })
    .expect("ns assembly");
    let c_ns = initial_control(&solver);
    let state = solver.solve(&c_ns, 3, None).expect("ns warm state");
    let mut ws = solver.workspace();
    snap = record(
        snap,
        "ns_picard_sweep",
        solver.nodes().len(),
        time_kernel(sz.warmup, sz.reps, || {
            let next = solver.refine_with(&state, &c_ns, &mut ws).expect("picard");
            std::hint::black_box(&next);
        }),
    );

    // ---- sparse NS: saddle assembly + Schur-preconditioned GMRES -------
    // The per-sweep costs of the RBF-FD saddle path: composing the 3×3
    // block-CSR Picard operator from the constant operator set (row
    // scaling + a sparse add, never a dense matrix), then one coupled
    // solve through block-ILU(0) + SIMPLE-Schur GMRES.
    let sparse_solver = NsSolver::new(NsConfig {
        channel: geometry::generators::ChannelConfig {
            h: sz.ns_h,
            ..Default::default()
        },
        re: 50.0,
        slot_velocity: 0.2,
        backend: BackendKind::SparseGmres,
        ..Default::default()
    })
    .expect("sparse ns assembly");
    let c_sp = initial_control(&sparse_solver);
    let state_sp = sparse_solver
        .solve(&c_sp, 3, None)
        .expect("sparse ns warm state");
    snap = record(
        snap,
        "ns_saddle_assembly_fd",
        sparse_solver.nodes().len(),
        time_kernel(sz.warmup, sz.reps.max(15), || {
            let blocks = sparse_solver.picard_blocks(&state_sp);
            std::hint::black_box(&blocks);
        }),
    );
    let blocks = sparse_solver.picard_blocks(&state_sp);
    let be = SparseIterative::gmres_saddle(&blocks, NsSolver::sparse_opts());
    let b_ns = sparse_solver.rhs(&c_sp);
    snap = record(
        snap,
        "gmres_schur_ns",
        sparse_solver.nodes().len(),
        time_kernel(sz.warmup, sz.reps, || {
            let x = be.solve(&b_ns).expect("gmres_schur_ns");
            std::hint::black_box(&x);
        }),
    );

    // ---- pool-width scaling sweep over the blocked dense kernels --------
    println!("\n# thread sweep");
    run_sweep(SWEEP_THREADS_DEFAULT, sz, snap)
}

/// Validates a written snapshot: parseable, carries every required entry
/// for its kind, and clears every hard gate. Returns the offending
/// messages. A `perf_suite` snapshot (from `measure`) must carry the full
/// kernel set plus the default thread sweep; a `perf_sweep` snapshot
/// (from `sweep`, possibly with custom `--threads`) is held only to the
/// sweep entries it actually contains.
fn verify_snapshot(text: &str) -> Vec<String> {
    let snap = match GoldenSnapshot::from_json(text) {
        Ok(s) => s,
        Err(e) => return vec![format!("unparseable snapshot: {e}")],
    };
    if snap.name == "perf_sweep" {
        return verify_sweep_entries(&snap, false);
    }
    let mut problems = Vec::new();
    if snap.get_scalar("threads").is_none() {
        problems.push("missing scalar: threads".to_string());
    }
    for k in REQUIRED_KERNELS {
        match snap.get_scalar(&format!("{k}.median_ns")) {
            None => problems.push(format!("missing kernel entry: {k}.median_ns")),
            Some(v) if !v.is_finite() || v <= 0.0 => {
                problems.push(format!("bad median for {k}: {v}"))
            }
            Some(_) => {}
        }
        if snap.get_scalar(&format!("{k}.iters")).is_none() {
            problems.push(format!("missing kernel entry: {k}.iters"));
        }
    }
    match snap.get_scalar("serve_cache_hit_speedup") {
        None => problems.push("missing scalar: serve_cache_hit_speedup".to_string()),
        Some(v) if !v.is_finite() || v < 5.0 => {
            problems.push(format!("serve_cache_hit_speedup {v} is below the 5x gate"))
        }
        Some(_) => {}
    }
    match snap.get_scalar("newton_vs_adam_iter") {
        None => problems.push("missing scalar: newton_vs_adam_iter".to_string()),
        Some(v) if !v.is_finite() || v < 5.0 => {
            problems.push(format!("newton_vs_adam_iter {v} is below the 5x gate"))
        }
        Some(_) => {}
    }
    match snap.get_scalar("neural_op_vs_dp_eval") {
        None => problems.push("missing scalar: neural_op_vs_dp_eval".to_string()),
        Some(v) if !v.is_finite() || v < 10.0 => {
            problems.push(format!("neural_op_vs_dp_eval {v} is below the 10x gate"))
        }
        Some(_) => {}
    }
    problems.extend(verify_sweep_entries(&snap, true));
    problems
}

/// The sweep half of snapshot verification: `host_threads` plus the
/// per-width timings and scaling gates. With `require_defaults` (the
/// `perf_suite` snapshot, which always sweeps [`SWEEP_THREADS_DEFAULT`])
/// every default-width entry and derived ratio must exist; without it
/// (a standalone `perf_sweep` with possibly custom widths) the gates
/// apply only to the entries present. The `lu_factor_speedup_8t` floor
/// is computed from the snapshot's own `host_threads` — the machine that
/// measured it, not the machine running `verify`.
fn verify_sweep_entries(snap: &GoldenSnapshot, require_defaults: bool) -> Vec<String> {
    let mut problems = Vec::new();
    let Some(host) = snap.get_scalar("host_threads") else {
        problems.push("missing scalar: host_threads".to_string());
        return problems;
    };
    if !host.is_finite() || host < 1.0 {
        problems.push(format!("bad host_threads: {host}"));
        return problems;
    }
    if require_defaults {
        for k in SWEPT_KERNELS {
            for t in SWEEP_THREADS_DEFAULT {
                let key = format!("{k}.t{t}.median_ns");
                match snap.get_scalar(&key) {
                    None => problems.push(format!("missing sweep entry: {key}")),
                    Some(v) if !v.is_finite() || v <= 0.0 => {
                        problems.push(format!("bad median for {key}: {v}"))
                    }
                    Some(_) => {}
                }
            }
            if snap.get_scalar(&format!("{k}_speedup_8t")).is_none() {
                problems.push(format!("missing scalar: {k}_speedup_8t"));
            }
        }
    }
    if let Some(t1) = snap.get_scalar("lu_factor.t1.median_ns") {
        if t1 > LU_FACTOR_BASELINE_NS / LU_T1_IMPROVEMENT {
            problems.push(format!(
                "lu_factor.t1.median_ns {t1} misses the {LU_T1_IMPROVEMENT}x improvement gate \
                 over the {LU_FACTOR_BASELINE_NS} ns baseline"
            ));
        }
    }
    if let Some(s) = snap.get_scalar("lu_factor_speedup_8t") {
        let floor = speedup_floor_8t(host);
        if !s.is_finite() || s < floor {
            problems.push(format!(
                "lu_factor_speedup_8t {s} is below the scaling floor {floor} \
                 for a {host}-thread host"
            ));
        }
    }
    problems
}

/// Soft regression report: new median vs baseline median per kernel.
fn baseline_report(new: &GoldenSnapshot, baseline_text: &str) {
    let base = match GoldenSnapshot::from_json(baseline_text) {
        Ok(s) => s,
        Err(e) => {
            println!("baseline unparseable ({e}); skipping regression report");
            return;
        }
    };
    println!("\n# regression report (new / baseline, soft)");
    for k in REQUIRED_KERNELS {
        let key = format!("{k}.median_ns");
        match (new.get_scalar(&key), base.get_scalar(&key)) {
            (Some(n), Some(b)) if b > 0.0 => {
                let ratio = n / b;
                let flag = if ratio > 1.25 {
                    "  <-- REGRESSION?"
                } else {
                    ""
                };
                println!("{k:>28}  {ratio:>6.2}x{flag}");
            }
            _ => println!("{k:>28}  (no baseline entry)"),
        }
    }
}

fn run_verify(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_suite verify: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let problems = verify_snapshot(&text);
    if problems.is_empty() {
        println!("perf_suite verify: {path} OK");
        return ExitCode::SUCCESS;
    }
    for p in &problems {
        eprintln!("perf_suite verify: {p}");
    }
    ExitCode::FAILURE
}

/// Self-checks the snapshot through [`verify_snapshot`] and writes it:
/// never commit a trajectory file `verify` would reject.
fn write_snapshot(snap: &GoldenSnapshot, out: &str) -> ExitCode {
    let json = snap.to_json();
    let problems = verify_snapshot(&json);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("perf_suite: produced invalid snapshot: {p}");
        }
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("perf_suite: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");
    ExitCode::SUCCESS
}

fn parse_thread_list(s: &str) -> Vec<usize> {
    let widths: Vec<usize> = s
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| panic!("--threads takes a comma list of widths, got {t:?}"))
        })
        .collect();
    assert!(!widths.is_empty(), "--threads needs at least one width");
    widths
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sub = match args.first().map(String::as_str) {
        Some("measure" | "sweep" | "verify") => args.remove(0),
        // Hidden legacy spelling: bare flags mean `measure`, with
        // top-level `--verify PATH` redirecting to `verify`.
        _ => "measure".to_string(),
    };

    let mut quick = false;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut verify_path: Option<String> = None;
    let mut threads: Vec<usize> = SWEEP_THREADS_DEFAULT.to_vec();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = Some(args.get(i).expect("--out needs a path").clone());
            }
            "--baseline" => {
                i += 1;
                baseline = Some(args.get(i).expect("--baseline needs a path").clone());
            }
            "--verify" => {
                i += 1;
                verify_path = Some(args.get(i).expect("--verify needs a path").clone());
            }
            "--threads" => {
                i += 1;
                threads = parse_thread_list(args.get(i).expect("--threads needs a comma list"));
            }
            other if sub == "verify" && !other.starts_with("--") && verify_path.is_none() => {
                verify_path = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let sz = if quick { Sizes::quick() } else { Sizes::full() };
    match sub.as_str() {
        "verify" => {
            let Some(path) = verify_path else {
                eprintln!("usage: perf_suite verify PATH");
                return ExitCode::FAILURE;
            };
            run_verify(&path)
        }
        "sweep" => {
            let snap = run_sweep(&threads, &sz, GoldenSnapshot::new("perf_sweep"));
            write_snapshot(&snap, out.as_deref().unwrap_or("BENCH_sweep.json"))
        }
        _ => {
            // `measure`, including the pre-subcommand bare-flag spelling.
            if let Some(path) = verify_path {
                return run_verify(&path); // legacy `--verify PATH` alias
            }
            let snap = run_suite(&sz);
            if let Some(path) = baseline {
                match std::fs::read_to_string(&path) {
                    Ok(text) => baseline_report(&snap, &text),
                    Err(e) => println!("no baseline at {path} ({e}); skipping report"),
                }
            }
            write_snapshot(&snap, out.as_deref().unwrap_or("BENCH_perf.json"))
        }
    }
}
