//! Regenerates figure 4 (b, c, d): the Navier–Stokes control problem.
//!
//! * fig 4b — cost `J` versus iteration for DAL (k = 3), DP (k = 10) and
//!   the PINN (epoch-strided, as in the paper's footnote about "strided").
//! * fig 4c — the inflow controls found by each method.
//! * fig 4d — the outflow profiles against the parabolic target.
//!
//! Usage: `fig4_ns [h] [iterations] [re] [pinn_epochs]`
//! (defaults 0.09, 80, 100, 3000).

use bench::write_csv;
use control::laplace::GradMethod;
use control::ns::{initial_control, run_ctx, NsRunConfig};
use control::pinn_ns::{NsPinn, NsPinnConfig};
use control::RunCtx;
use geometry::generators::ChannelConfig;
use pde::analytic::poiseuille;
use pde::{NsConfig, NsSolver};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let h: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.09);
    let iterations: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(80);
    let re: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100.0);
    let pinn_epochs: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(3000);
    println!("== fig 4 (Navier-Stokes control): h = {h}, Re = {re}, {iterations} iterations ==\n");

    let solver = NsSolver::new(NsConfig {
        channel: ChannelConfig {
            h,
            ..Default::default()
        },
        re,
        ..Default::default()
    })
    .expect("solver assembly");
    println!(
        "cloud: {} nodes ({} interior, {} inflow controls)   [paper: 1385 GMSH nodes]\n",
        solver.nodes().len(),
        solver.nodes().n_interior(),
        solver.n_controls()
    );

    // DAL with k = 3 and DP with k = 10 refinements, per Table 2.
    let dal = run_ctx(
        &solver,
        &NsRunConfig {
            iterations,
            refinements: 3,
            lr: 1e-1, // Table 2
            log_every: (iterations / 40).max(1),
            initial_scale: 1.0,
        },
        GradMethod::Dal,
        &RunCtx::unchecked(),
    )
    .expect("DAL run");
    let dp = run_ctx(
        &solver,
        &NsRunConfig {
            iterations,
            refinements: 10,
            lr: 1e-1,
            log_every: (iterations / 40).max(1),
            initial_scale: 1.0,
        },
        GradMethod::Dp,
        &RunCtx::unchecked(),
    )
    .expect("DP run");

    // PINN with the two-step search reduced to the paper's winning ω* = 1.
    let mut pinn = NsPinn::new(NsPinnConfig {
        channel: solver.cfg().channel.clone(),
        re,
        slot_velocity: solver.cfg().slot_velocity,
        epochs_step1: pinn_epochs,
        epochs_step2: pinn_epochs / 2,
        ..Default::default()
    });
    let pinn_hist = pinn.train(1.0, pinn_epochs, true);
    let pinn_step1 = pinn.loss_parts();
    pinn.reset_field_network(7);
    pinn.train(0.0, pinn_epochs / 2, false);
    let pinn_parts = pinn.loss_parts();

    // ---- fig 4b ----
    println!("-- fig 4b: J vs iteration --");
    for r in [&dal.report, &dp.report] {
        let series: Vec<String> = r
            .history
            .entries
            .iter()
            .step_by((r.history.entries.len() / 8).max(1))
            .map(|e| format!("({}, {:.2e})", e.iter, e.cost))
            .collect();
        println!("{:5}: {}", r.method, series.join(" "));
    }
    let pinn_series: Vec<String> = pinn_hist
        .entries
        .iter()
        .step_by((pinn_hist.entries.len() / 8).max(1))
        .map(|e| format!("({}, {:.2e})", e.iter, e.cost))
        .collect();
    println!("PINN : {}", pinn_series.join(" "));
    println!(
        "\nfinal J:   DAL {:.3e}   DP {:.3e}   PINN {:.3e} (step-1 network: {:.3e})",
        dal.report.final_cost, dp.report.final_cost, pinn_parts.j, pinn_step1.j
    );
    println!("paper (1385 nodes / Table 3): DAL 8.2e-2 (fails), PINN 1.0e-3, DP 2.6e-4\n");
    let rows_b: Vec<Vec<f64>> = dp
        .report
        .history
        .entries
        .iter()
        .zip(dal.report.history.entries.iter())
        .map(|(d, a)| vec![d.iter as f64, d.cost, a.cost])
        .collect();
    write_csv(
        "results/fig4b_convergence.csv",
        &["iter", "J_dp", "J_dal"],
        &rows_b,
    )
    .expect("csv");

    // ---- fig 4c: inflow controls ----
    let ys = solver.inflow_y();
    let c0 = initial_control(&solver);
    let pinn_c = pinn.control_values(ys);
    let rows_c: Vec<Vec<f64>> = (0..ys.len())
        .map(|i| vec![ys[i], c0[i], dp.control[i], dal.control[i], pinn_c[i]])
        .collect();
    println!("-- fig 4c: inflow controls c(y) [y, initial, DP, DAL, PINN] --");
    for r in &rows_c {
        println!(
            "y={:.3}  init={:+.3}  dp={:+.3}  dal={:+.3}  pinn={:+.3}",
            r[0], r[1], r[2], r[3], r[4]
        );
    }
    write_csv(
        "results/fig4c_controls.csv",
        &["y", "c_init", "c_dp", "c_dal", "c_pinn"],
        &rows_c,
    )
    .expect("csv");

    // ---- fig 4d: outflow profiles ----
    let (u_dp, v_dp) = solver.outflow_profile(&dp.state);
    let (u_dal, v_dal) = solver.outflow_profile(&dal.state);
    let lx = solver.cfg().channel.lx;
    let out_pts: Vec<(f64, f64)> = solver.outflow_y().iter().map(|&y| (lx, y)).collect();
    let (u_pinn, v_pinn, _) = pinn.fields_at(&out_pts);
    println!("\n-- fig 4d: outflow profiles u(Lx, y) vs parabolic target --");
    let mut rows_d = Vec::new();
    for (k, &y) in solver.outflow_y().iter().enumerate() {
        let t = poiseuille(y, solver.cfg().channel.ly);
        println!(
            "y={:.3}  target={:.3}  dp={:.3}  dal={:.3}  pinn={:.3}  (v: dp={:+.3} pinn={:+.3})",
            y, t, u_dp[k], u_dal[k], u_pinn[k], v_dp[k], v_pinn[k]
        );
        rows_d.push(vec![
            y, t, u_dp[k], u_dal[k], u_pinn[k], v_dp[k], v_dal[k], v_pinn[k],
        ]);
    }
    write_csv(
        "results/fig4d_outflow.csv",
        &[
            "y", "target", "u_dp", "u_dal", "u_pinn", "v_dp", "v_dal", "v_pinn",
        ],
        &rows_d,
    )
    .expect("csv");
    println!("\nwrote results/fig4b_convergence.csv, fig4c_controls.csv, fig4d_outflow.csv");
}
