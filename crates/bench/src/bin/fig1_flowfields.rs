//! Regenerates figure 1: qualitative flow fields for the three methods'
//! optimized controls.
//!
//! The paper's fig. 1 shows streamline plots for DP, DAL and PINN; here the
//! velocity fields are evaluated on a regular grid and written to CSV (for
//! plotting), and the figure's *caption claim* — "PINN achieves good
//! control at the expense of first principles" — is quantified by
//! evaluating the PINN's fields through the RBF solver's momentum and
//! continuity residuals, compared with the DP solution's residuals.
//!
//! Usage: `fig1_flowfields [h] [iterations] [pinn_epochs]`
//! (defaults 0.12, 50, 1200).

use bench::write_csv;
use control::laplace::GradMethod;
use control::ns::{run_ctx, NsRunConfig};
use control::pinn_ns::{NsPinn, NsPinnConfig};
use control::RunCtx;
use geometry::generators::ChannelConfig;
use linalg::DVec;
use pde::{NsConfig, NsSolver, NsState};

/// Interpolates nodal values to the nearest node of each grid point (the
/// fields are for qualitative plots only).
fn sample_nearest(solver: &NsSolver, f: &DVec, pts: &[(f64, f64)]) -> Vec<f64> {
    pts.iter()
        .map(|&(x, y)| {
            let mut best = 0;
            let mut bd = f64::INFINITY;
            for i in 0..solver.nodes().len() {
                let p = solver.nodes().point(i);
                let d = (p.x - x) * (p.x - x) + (p.y - y) * (p.y - y);
                if d < bd {
                    bd = d;
                    best = i;
                }
            }
            f[best]
        })
        .collect()
}

/// Momentum + continuity residual RMS of arbitrary nodal fields, evaluated
/// with the RBF solver's *physical-first-principles* operators.
fn first_principles_residual(solver: &NsSolver, state: &NsState, c: &DVec) -> (f64, f64) {
    (
        solver.momentum_residual(state, c),
        solver.divergence_norm(state),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let h: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.12);
    let iterations: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50);
    let pinn_epochs: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1200);
    println!("== fig 1 (qualitative flow fields): h = {h} ==\n");

    let solver = NsSolver::new(NsConfig {
        channel: ChannelConfig {
            h,
            ..Default::default()
        },
        re: 100.0,
        ..Default::default()
    })
    .expect("solver");

    let mk_cfg = |k: usize| NsRunConfig {
        iterations,
        refinements: k,
        lr: 1e-1,
        log_every: 10,
        initial_scale: 1.0,
    };
    let dp = run_ctx(&solver, &mk_cfg(10), GradMethod::Dp, &RunCtx::unchecked()).expect("DP");
    let dal = run_ctx(&solver, &mk_cfg(3), GradMethod::Dal, &RunCtx::unchecked()).expect("DAL");

    let mut pinn = NsPinn::new(NsPinnConfig {
        channel: solver.cfg().channel.clone(),
        re: 100.0,
        slot_velocity: solver.cfg().slot_velocity,
        epochs_step1: pinn_epochs,
        ..Default::default()
    });
    pinn.train(1.0, pinn_epochs, true);

    // Velocity fields on a plotting grid.
    let (nx, ny) = (45, 30);
    let lx = solver.cfg().channel.lx;
    let ly = solver.cfg().channel.ly;
    let mut pts = Vec::new();
    for i in 0..nx {
        for j in 0..ny {
            pts.push((
                lx * (i as f64 + 0.5) / nx as f64,
                ly * (j as f64 + 0.5) / ny as f64,
            ));
        }
    }
    let u_dp = sample_nearest(&solver, &dp.state.u, &pts);
    let v_dp = sample_nearest(&solver, &dp.state.v, &pts);
    let u_dal = sample_nearest(&solver, &dal.state.u, &pts);
    let v_dal = sample_nearest(&solver, &dal.state.v, &pts);
    let (u_pinn, v_pinn, _) = pinn.fields_at(&pts);
    let rows: Vec<Vec<f64>> = (0..pts.len())
        .map(|k| {
            vec![
                pts[k].0, pts[k].1, u_dp[k], v_dp[k], u_dal[k], v_dal[k], u_pinn[k], v_pinn[k],
            ]
        })
        .collect();
    let p = write_csv(
        "results/fig1_flowfields.csv",
        &[
            "x", "y", "u_dp", "v_dp", "u_dal", "v_dal", "u_pinn", "v_pinn",
        ],
        &rows,
    )
    .expect("csv");
    println!("wrote {p}\n");

    // First-principles check: plug the PINN's own fields into the RBF
    // solver's residuals and compare with the DP state.
    let pinn_nodal_pts: Vec<(f64, f64)> =
        solver.nodes().points().iter().map(|p| (p.x, p.y)).collect();
    let (pu, pv, pp) = pinn.fields_at(&pinn_nodal_pts);
    let pinn_state = NsState {
        u: pu,
        v: pv,
        p: pp,
    };
    let (mom_dp, div_dp) = first_principles_residual(&solver, &dp.state, &dp.control);
    let pinn_c = pinn.control_values(solver.inflow_y());
    let (mom_pinn, div_pinn) = first_principles_residual(&solver, &pinn_state, &pinn_c);
    println!("-- first principles (RBF residuals of each method's fields) --");
    println!("DP  : momentum RMS {mom_dp:.3e}   divergence RMS {div_dp:.3e}");
    println!("PINN: momentum RMS {mom_pinn:.3e}   divergence RMS {div_pinn:.3e}");
    println!(
        "\npaper fig. 1 caption: \"PINN achieves good control at the expense of first \
         principles\" — reproduced iff the PINN rows are orders of magnitude larger. \
         Ratio: momentum x{:.1}, divergence x{:.1}",
        mom_pinn / mom_dp.max(1e-300),
        div_pinn / div_dp.max(1e-300)
    );
    println!(
        "\nfinal J:   DP {:.3e}   DAL {:.3e}",
        dp.report.final_cost, dal.report.final_cost
    );
}
