//! Regenerates figures 3c–3e: the PINN two-step ω line search on the
//! Laplace problem.
//!
//! The paper tries 11 values of ω from 1e−3 to 1e7 and reports ω* = 1e−1 as
//! the most balanced. This harness reproduces the sweep at reduced epoch
//! counts and prints, per ω: the step-1 losses (fig 3c/3d) and the step-2
//! retrained-solution `J` used for selection (fig 3e).
//!
//! Usage: `fig3_linesearch [epochs1] [epochs2] [n_omegas]`
//! (defaults 4000, 2500, 11).

use bench::write_csv;
use control::pinn::{line_search_laplace_with_referee, PinnConfig};
use pde::LaplaceControlProblem;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let epochs1: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4000);
    let epochs2: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2500);
    let n_omegas: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(11);
    // The paper's range: 1e-3 … 1e7 in decades.
    let omegas: Vec<f64> = (0..n_omegas).map(|k| 10f64.powi(k as i32 - 3)).collect();
    println!(
        "== fig 3c-3e (PINN ω line search): {} ω values, epochs {epochs1}/{epochs2} ==\n",
        omegas.len()
    );

    let cfg = PinnConfig {
        hidden: vec![30, 30, 30], // Table 1: 3 x 30
        control_hidden: vec![20, 20],
        epochs_step1: epochs1,
        epochs_step2: epochs2,
        n_interior: 600,
        n_boundary: 48,
        ..Default::default()
    };
    let referee = LaplaceControlProblem::new(24).expect("referee problem");
    let ls = line_search_laplace_with_referee(&cfg, &omegas, Some(&referee));

    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "omega", "L_pde (s1)", "J (s1)", "L_pde (s2)", "J (s2)", "J (solver)"
    );
    let mut rows = Vec::new();
    for r in &ls.results {
        let js = r.j_solver.unwrap_or(f64::NAN);
        println!(
            "{:>10.1e} {:>14.3e} {:>14.3e} {:>14.3e} {:>14.3e} {:>14.3e}",
            r.omega, r.l_pde_step1, r.j_step1, r.l_pde_step2, r.j_step2, js
        );
        rows.push(vec![
            r.omega,
            r.l_pde_step1,
            r.j_step1,
            r.l_pde_step2,
            r.j_step2,
            js,
        ]);
    }
    let best = &ls.results[ls.best];
    println!(
        "\nselected ω* = {:.1e} with J = {:.3e}   (paper: ω* = 1e-1, final PINN J = 1.6e-2)",
        best.omega, best.j_step2
    );
    let p = write_csv(
        "results/fig3cde_linesearch.csv",
        &["omega", "l_pde_s1", "j_s1", "l_pde_s2", "j_s2", "j_solver"],
        &rows,
    )
    .expect("csv");
    println!("wrote {p}");

    // Winner's control profile, for overlay on fig 3a.
    let xs: Vec<f64> = (0..41).map(|i| i as f64 / 40.0).collect();
    let c = ls.winner.control_values(&xs);
    let rows_c: Vec<Vec<f64>> = xs.iter().zip(c.iter()).map(|(&x, &v)| vec![x, v]).collect();
    let p = write_csv("results/fig3a_pinn_control.csv", &["x", "c_pinn"], &rows_c).expect("csv");
    println!("wrote {p}");
}
