//! Output helpers for the experiment harnesses: aligned console series and
//! CSV files under `results/`.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Prints a labelled numeric series as an aligned table.
pub fn print_series(title: &str, headers: &[&str], rows: &[Vec<f64>]) {
    println!("# {title}");
    let mut line = String::new();
    for h in headers {
        line.push_str(&format!("{h:>16} "));
    }
    println!("{line}");
    for row in rows {
        let mut line = String::new();
        for v in row {
            line.push_str(&format!("{v:>16.6e} "));
        }
        println!("{line}");
    }
    println!();
}

/// Writes a CSV file (creating parent directories), returning the path.
pub fn write_csv(path: &str, headers: &[&str], rows: &[Vec<f64>]) -> std::io::Result<String> {
    if let Some(dir) = Path::new(path).parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::File::create(path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.9e}")).collect();
        writeln!(f, "{}", cells.join(","))?;
    }
    Ok(path.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let path = std::env::temp_dir().join("meshfree_bench_test.csv");
        let p = path.to_str().unwrap();
        write_csv(p, &["a", "b"], &[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let text = std::fs::read_to_string(p).unwrap();
        assert!(text.starts_with("a,b\n"));
        assert_eq!(text.lines().count(), 3);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn print_series_does_not_panic() {
        print_series("demo", &["x", "y"], &[vec![0.0, 1.0]]);
    }
}
