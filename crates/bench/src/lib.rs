//! # meshfree-bench
//!
//! Benchmarks and experiment regenerators for the paper's tables and
//! figures. The library part holds shared helpers for the `[[bin]]`
//! harnesses (figure/table regeneration) and the Criterion benches.

pub mod output;

pub use output::{print_series, write_csv};
