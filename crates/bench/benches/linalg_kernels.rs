//! Criterion benches for the dense/sparse linear algebra kernels that
//! dominate every method's per-iteration cost (backing Table 3's timings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linalg::{gmres, DMat, DVec, IterOpts, Lu, Preconditioner, Triplets};
use std::hint::black_box;

fn test_matrix(n: usize) -> DMat {
    DMat::from_fn(n, n, |i, j| {
        let v = (((i * 131 + j * 31 + 7) % 997) as f64) / 997.0 - 0.5;
        if i == j {
            v + 2.0
        } else {
            v
        }
    })
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu");
    for &n in &[64usize, 128, 256] {
        let a = test_matrix(n);
        g.bench_with_input(BenchmarkId::new("factor", n), &a, |b, a| {
            b.iter(|| Lu::factor(black_box(a)).unwrap())
        });
        let lu = Lu::factor(&a).unwrap();
        let rhs = DVec::from_fn(n, |i| (i as f64).sin());
        g.bench_with_input(BenchmarkId::new("solve", n), &lu, |b, lu| {
            b.iter(|| lu.solve(black_box(&rhs)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("solve_transpose", n), &lu, |b, lu| {
            b.iter(|| lu.solve_transpose(black_box(&rhs)).unwrap())
        });
    }
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let a = test_matrix(n);
        let b_mat = test_matrix(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(black_box(&b_mat)).unwrap())
        });
    }
    g.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse");
    for &n in &[1024usize, 4096] {
        // 1-D Poisson pattern, ~3 nnz per row.
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        let a = t.to_csr();
        let x = DVec::from_fn(n, |i| 1.0 / (1.0 + i as f64));
        g.bench_with_input(BenchmarkId::new("spmv", n), &a, |b, a| {
            b.iter(|| a.matvec(black_box(&x)))
        });
        let rhs = DVec::full(n, 1.0);
        // ILU(0) is exact for tridiagonal systems, so this measures one
        // preconditioned sweep + the residual check — the per-iteration
        // floor of the sparse path.
        let m = Preconditioner::ilu0_from(&a);
        g.bench_with_input(BenchmarkId::new("gmres_ilu0", n), &a, |b, a| {
            b.iter(|| gmres(a, black_box(&rhs), &m, &IterOpts::gmres().tol(1e-8)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lu, bench_matmul, bench_sparse);
criterion_main!(benches);
