//! Criterion benches for one PINN training epoch (forward Taylor pass +
//! reverse sweep + Adam step) at a few network/batch sizes — the unit cost
//! behind the paper's 20 k- and 100 k-epoch totals.

use control::pinn::{LaplacePinn, PinnConfig};
use control::pinn_ns::{NsPinn, NsPinnConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_laplace_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("pinn_laplace_epoch");
    g.sample_size(10);
    for &(width, batch) in &[(16usize, 128usize), (30, 400)] {
        let cfg = PinnConfig {
            hidden: vec![width, width, width],
            n_interior: batch,
            n_boundary: batch / 8,
            ..Default::default()
        };
        let mut pinn = LaplacePinn::new(cfg);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}w_{batch}b")),
            &(),
            |b, _| b.iter(|| pinn.train(1.0, 1, true)),
        );
    }
    g.finish();
}

fn bench_ns_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("pinn_ns_epoch");
    g.sample_size(10);
    for &(width, batch) in &[(16usize, 128usize), (32, 400)] {
        let cfg = NsPinnConfig {
            hidden: vec![width, width, width],
            n_interior: batch,
            n_boundary: batch / 12,
            ..Default::default()
        };
        let mut pinn = NsPinn::new(cfg);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}w_{batch}b")),
            &(),
            |b, _| b.iter(|| pinn.train(1.0, 1, true)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_laplace_epoch, bench_ns_epoch);
criterion_main!(benches);
