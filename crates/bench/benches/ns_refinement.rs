//! Criterion benches for one Navier–Stokes Picard refinement — plain
//! (forward only) versus taped (DP records the solve for the reverse
//! sweep) — and the full DP gradient at several refinement counts.
//!
//! Expected shape: taped ≈ plain per refinement (the LU dominates; the tape
//! adds bookkeeping, not flops), while *memory* grows with `k` (see
//! `ablations refinements` for the memory series).

use control::ns::initial_control;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geometry::generators::ChannelConfig;
use pde::ns_dp::NsDp;
use pde::{NsConfig, NsSolver};
use std::hint::black_box;

fn solver(h: f64) -> NsSolver {
    NsSolver::new(NsConfig {
        channel: ChannelConfig {
            h,
            ..Default::default()
        },
        re: 50.0,
        ..Default::default()
    })
    .unwrap()
}

fn bench_refinement(c: &mut Criterion) {
    let mut g = c.benchmark_group("ns_refinement");
    g.sample_size(10);
    for &h in &[0.16f64, 0.12] {
        let s = solver(h);
        let ctrl = initial_control(&s);
        let state = s.initial_state(&ctrl);
        g.bench_with_input(
            BenchmarkId::new("plain", format!("{}nodes", s.nodes().len())),
            &s,
            |b, s| b.iter(|| s.refine(black_box(&state), &ctrl).unwrap()),
        );
        let dp = NsDp::new(&s);
        g.bench_with_input(
            BenchmarkId::new("taped_k1", format!("{}nodes", s.nodes().len())),
            &dp,
            |b, dp| b.iter(|| dp.cost_and_grad(black_box(&ctrl), 1, None).unwrap()),
        );
    }
    g.finish();
}

fn bench_dp_vs_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("ns_dp_gradient_vs_k");
    g.sample_size(10);
    let s = solver(0.16);
    let dp = NsDp::new(&s);
    let ctrl = initial_control(&s);
    for &k in &[1usize, 3, 10] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| dp.cost_and_grad(black_box(&ctrl), k, None).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_refinement, bench_dp_vs_k);
criterion_main!(benches);
