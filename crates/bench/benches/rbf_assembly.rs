//! Criterion benches for the RBF discretisation layer: global collocation
//! assembly, fit factorization, differentiation matrices, and RBF-FD
//! stencil generation — the setup costs every experiment pays once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geometry::generators::{unit_square_grid, BoundaryClass};
use geometry::{NodeKind, Point2};
use linalg::Lu;
use rbf::fd::{fd_matrix, FdConfig};
use rbf::{DiffOp, GlobalCollocation, RbfKernel};
use std::hint::black_box;

fn all_dirichlet(p: Point2) -> BoundaryClass {
    let normal = if p.y == 0.0 {
        Point2::new(0.0, -1.0)
    } else if p.y == 1.0 {
        Point2::new(0.0, 1.0)
    } else if p.x == 0.0 {
        Point2::new(-1.0, 0.0)
    } else {
        Point2::new(1.0, 0.0)
    };
    (NodeKind::Dirichlet, 1, normal)
}

fn bench_collocation(c: &mut Criterion) {
    let mut g = c.benchmark_group("collocation");
    g.sample_size(10);
    for &n_side in &[10usize, 16, 24] {
        let nodes = unit_square_grid(n_side, n_side, all_dirichlet);
        g.bench_with_input(
            BenchmarkId::new("fit_factor", n_side * n_side),
            &nodes,
            |b, nodes| {
                b.iter(|| GlobalCollocation::new(black_box(nodes), RbfKernel::Phs3, 1).unwrap())
            },
        );
        let ctx = GlobalCollocation::new(&nodes, RbfKernel::Phs3, 1).unwrap();
        g.bench_with_input(
            BenchmarkId::new("pde_assemble", n_side * n_side),
            &ctx,
            |b, ctx| {
                b.iter(|| {
                    let a = ctx.assemble_with_bcs(|_, p| ctx.row(DiffOp::Lap, p), 0.0);
                    Lu::factor(black_box(&a)).unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_diff_matrices(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff_matrices");
    g.sample_size(10);
    for &n_side in &[10usize, 14] {
        let nodes = unit_square_grid(n_side, n_side, all_dirichlet);
        let ctx = GlobalCollocation::new(&nodes, RbfKernel::Phs3, 1).unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(n_side * n_side),
            &ctx,
            |b, ctx| b.iter(|| ctx.diff_matrices().unwrap()),
        );
    }
    g.finish();
}

fn bench_rbf_fd(c: &mut Criterion) {
    let mut g = c.benchmark_group("rbf_fd");
    g.sample_size(10);
    for &n_side in &[16usize, 24] {
        let nodes = unit_square_grid(n_side, n_side, all_dirichlet);
        g.bench_with_input(
            BenchmarkId::new("laplacian_matrix", n_side * n_side),
            &nodes,
            |b, nodes| {
                b.iter(|| {
                    fd_matrix(
                        black_box(nodes),
                        RbfKernel::Phs3,
                        FdConfig::default(),
                        DiffOp::Lap,
                    )
                    .unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_collocation,
    bench_diff_matrices,
    bench_rbf_fd
);
criterion_main!(benches);
