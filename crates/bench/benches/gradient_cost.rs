//! Criterion benches for one gradient evaluation per method on the Laplace
//! problem — the per-iteration costs whose totals appear in Table 3.
//!
//! Expected shape: DP ≈ DAL (both are ~two linear solves against the cached
//! factorization), FD ≈ `n_c ×` a forward solve (central differences need
//! `2 n_c` solves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linalg::DVec;
use pde::LaplaceControlProblem;
use std::hint::black_box;

fn bench_laplace_gradients(c: &mut Criterion) {
    let mut g = c.benchmark_group("laplace_gradient");
    g.sample_size(20);
    for &nx in &[12usize, 20] {
        let p = LaplaceControlProblem::new(nx).unwrap();
        let ctrl = DVec::from_fn(p.n_controls(), |i| 0.1 * (i as f64).sin());
        g.bench_with_input(BenchmarkId::new("dp", nx), &p, |b, p| {
            b.iter(|| p.cost_and_grad_dp(black_box(&ctrl)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("dal", nx), &p, |b, p| {
            b.iter(|| p.cost_and_grad_dal(black_box(&ctrl)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("fd", nx), &p, |b, p| {
            b.iter(|| p.cost_and_grad_fd(black_box(&ctrl), 1e-6).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("cost_only", nx), &p, |b, p| {
            b.iter(|| p.cost(black_box(&ctrl)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_laplace_gradients);
criterion_main!(benches);
