//! Compressed sparse row (CSR) matrices with parallel SpMV.
//!
//! The RBF-FD path assembles global differential operators from local
//! stencils: each row has only `k` (stencil size) nonzeros, so CSR + an
//! iterative solver replaces the dense global collocation when memory is the
//! bottleneck (cf. Table 3 of the paper, where dense DP peaks at 45 GB).

use crate::dense::DMat;
use crate::error::{LinalgError, Result};
use crate::vector::DVec;
use meshfree_runtime::par;

/// Triplet (COO) accumulator used while assembling a sparse matrix.
///
/// Duplicate entries are summed when converting to CSR, which makes
/// stencil-by-stencil assembly straightforward.
#[derive(Debug, Clone, Default)]
pub struct Triplets {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Triplets {
    /// Creates an empty accumulator for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(i, j)`. Panics on out-of-range indices.
    pub fn push(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.rows && j < self.cols, "triplet out of range");
        if value != 0.0 {
            self.entries.push((i, j, value));
        }
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn nnz_raw(&self) -> usize {
        self.entries.len()
    }

    /// Converts to CSR, summing duplicates.
    pub fn to_csr(&self) -> Csr {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|e| (e.0, e.1));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        let mut iter = entries.into_iter().peekable();
        while let Some((i, j, mut v)) = iter.next() {
            while let Some(&(i2, j2, v2)) = iter.peek() {
                if i2 == i && j2 == j {
                    v += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            col_idx.push(j);
            values.push(v);
            row_ptr[i + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    /// Identity matrix in CSR form.
    pub fn eye(n: usize) -> Self {
        Csr {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Sparse matrix-vector product, parallel over rows for large matrices.
    pub fn matvec(&self, x: &DVec) -> DVec {
        let mut y = DVec::zeros(self.rows);
        self.matvec_into(x, &mut y);
        y
    }

    /// [`Csr::matvec`] into a caller-owned buffer — the allocation-free form
    /// the Krylov inner loops use. Parallel over row chunks for large
    /// matrices; the result is identical for any thread count (each row is
    /// an independent dot product).
    pub fn matvec_into(&self, x: &DVec, out: &mut DVec) {
        assert_eq!(x.len(), self.cols, "spmv: length mismatch");
        assert_eq!(out.len(), self.rows, "spmv: output length mismatch");
        let compute = |i: usize| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(|(&j, &v)| v * x[j]).sum::<f64>()
        };
        if self.nnz() >= 1 << 15 {
            const CHUNK: usize = 256;
            par::par_chunks_mut(out.as_mut_slice(), CHUNK, |ci, chunk| {
                let base = ci * CHUNK;
                for (k, o) in chunk.iter_mut().enumerate() {
                    *o = compute(base + k);
                }
            });
        } else {
            for (i, o) in out.as_mut_slice().iter_mut().enumerate() {
                *o = compute(i);
            }
        }
    }

    /// Transposed sparse matvec `Aᵀ x`.
    pub fn matvec_t(&self, x: &DVec) -> DVec {
        assert_eq!(x.len(), self.rows, "spmv_t: length mismatch");
        let mut y = DVec::zeros(self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let xi = x[i];
            if xi != 0.0 {
                for (&j, &v) in cols.iter().zip(vals) {
                    y[j] += v * xi;
                }
            }
        }
        y
    }

    /// Explicit transpose in CSR form.
    pub fn transpose(&self) -> Csr {
        let mut t = Triplets::new(self.cols, self.rows);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                t.push(j, i, v);
            }
        }
        t.to_csr()
    }

    /// Densifies (for tests and small systems).
    pub fn to_dense(&self) -> DMat {
        let mut m = DMat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                m[(i, j)] += v;
            }
        }
        m
    }

    /// Extracts the diagonal (zeros where no entry is stored).
    pub fn diagonal(&self) -> DVec {
        let n = self.rows.min(self.cols);
        let mut d = DVec::zeros(n);
        for i in 0..n {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if j == i {
                    d[i] = v;
                }
            }
        }
        d
    }

    /// Scales row `i` by `s[i]` in place.
    pub fn scale_rows_mut(&mut self, s: &[f64]) {
        assert_eq!(s.len(), self.rows, "scale_rows: length mismatch");
        for (i, &si) in s.iter().enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for v in &mut self.values[lo..hi] {
                *v *= si;
            }
        }
    }

    /// Reads the stored value at `(i, j)`, or `None` if outside the
    /// sparsity pattern (binary search within the row).
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(pos) => Some(self.values[lo + pos]),
            Err(_) => None,
        }
    }

    /// Overwrites the stored value at `(i, j)`; returns false if `(i, j)`
    /// is outside the sparsity pattern.
    pub fn set(&mut self, i: usize, j: usize, v: f64) -> bool {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(pos) => {
                self.values[lo + pos] = v;
                true
            }
            Err(_) => false,
        }
    }

    /// Returns `alpha*self + beta*other` (same sparsity union).
    pub fn add_scaled(&self, alpha: f64, other: &Csr, beta: f64) -> Csr {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_scaled: shape mismatch"
        );
        let mut t = Triplets::new(self.rows, self.cols);
        for i in 0..self.rows {
            let (c1, v1) = self.row(i);
            for (&j, &v) in c1.iter().zip(v1) {
                t.push(i, j, alpha * v);
            }
            let (c2, v2) = other.row(i);
            for (&j, &v) in c2.iter().zip(v2) {
                t.push(i, j, beta * v);
            }
        }
        t.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [[1, 0, 2], [0, 3, 0], [4, 0, 5]]
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(0, 2, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 0, 4.0);
        t.push(2, 2, 5.0);
        t.to_csr()
    }

    #[test]
    fn triplets_dedup_sums() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 2.5);
        t.push(1, 1, -1.0);
        let c = t.to_csr();
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.to_dense()[(0, 0)], 3.5);
        assert_eq!(c.to_dense()[(1, 1)], -1.0);
    }

    #[test]
    fn zero_entries_dropped() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 0.0);
        assert_eq!(t.nnz_raw(), 0);
    }

    #[test]
    fn spmv_matches_dense() {
        let c = sample();
        let d = c.to_dense();
        let x = DVec(vec![1.0, 2.0, 3.0]);
        let ys = c.matvec(&x);
        let yd = d.matvec(&x).unwrap();
        assert!((&ys - &yd).norm2() < 1e-14);
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let c = sample();
        let x = DVec(vec![1.0, 2.0, 3.0]);
        let y = c.matvec(&x);
        let mut y2 = DVec::full(3, 9.9); // stale values must be overwritten
        c.matvec_into(&x, &mut y2);
        assert_eq!(y.as_slice(), y2.as_slice());
    }

    #[test]
    fn spmv_transpose_matches_dense() {
        let c = sample();
        let d = c.to_dense().transpose();
        let x = DVec(vec![1.0, -1.0, 0.5]);
        assert!((&c.matvec_t(&x) - &d.matvec(&x).unwrap()).norm2() < 1e-14);
    }

    #[test]
    fn transpose_roundtrip() {
        let c = sample();
        assert_eq!(c.transpose().transpose().to_dense(), c.to_dense());
    }

    #[test]
    fn eye_and_diag() {
        let e = Csr::eye(4);
        assert_eq!(e.nnz(), 4);
        let x = DVec(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.matvec(&x).as_slice(), x.as_slice());
        assert_eq!(sample().diagonal().as_slice(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn scale_rows_and_add_scaled() {
        let mut c = sample();
        c.scale_rows_mut(&[2.0, 1.0, 0.5]);
        assert_eq!(c.to_dense()[(0, 2)], 4.0);
        assert_eq!(c.to_dense()[(2, 0)], 2.0);
        let s = sample();
        let sum = s.add_scaled(1.0, &s, 1.0);
        assert_eq!(sum.to_dense()[(2, 2)], 10.0);
    }

    /// A rectangular matrix with an empty row and a duplicate-summed entry:
    /// the shapes the structured-grid assembly never produces but the
    /// algebra must still handle.
    ///
    /// ```text
    /// [[0, 0, 0, 0], [1, 0, 5, 0], [0, 0, 0, -2]]   (row 0 empty; (1,2) = 2+3)
    /// ```
    fn awkward() -> Csr {
        let mut t = Triplets::new(3, 4);
        t.push(1, 2, 2.0);
        t.push(1, 0, 1.0);
        t.push(1, 2, 3.0);
        t.push(2, 3, -2.0);
        t.to_csr()
    }

    #[test]
    fn duplicates_summing_to_zero_keep_the_pattern_entry() {
        // Cancellation must not silently change the sparsity pattern —
        // ILU(0) and `set` rely on the pattern surviving.
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 4.0);
        t.push(0, 1, -4.0);
        let c = t.to_csr();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 1), Some(0.0));
        assert_eq!(c.get(1, 0), None);
    }

    #[test]
    fn matvec_t_matches_dense_on_rectangular_with_empty_rows() {
        let a = awkward();
        assert_eq!((a.nrows(), a.ncols()), (3, 4));
        assert_eq!(a.row(0), (&[][..], &[][..]), "row 0 should be empty");
        let x = DVec(vec![0.5, -1.0, 2.0]);
        let yd = a.to_dense().transpose().matvec(&x).unwrap();
        let ys = a.matvec_t(&x);
        assert_eq!(ys.len(), 4);
        assert!((&ys - &yd).norm2() < 1e-15);
    }

    #[test]
    fn transpose_matches_dense_on_rectangular_with_empty_rows() {
        let a = awkward();
        let t = a.transpose();
        assert_eq!((t.nrows(), t.ncols()), (4, 3));
        assert_eq!(t.nnz(), a.nnz());
        let ad = a.to_dense();
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(t.to_dense()[(i, j)], ad[(j, i)], "at ({i}, {j})");
            }
        }
        // And the transposed matvec agrees with matvec_t on the original.
        let x = DVec(vec![1.0, 2.0, 3.0]);
        assert!((&t.matvec(&x) - &a.matvec_t(&x)).norm2() < 1e-15);
    }

    #[test]
    fn add_scaled_matches_dense_on_disjoint_patterns() {
        // Patterns that only partially overlap, plus an empty row in one
        // operand: the union pattern must carry exact dense values.
        let a = awkward();
        let mut t = Triplets::new(3, 4);
        t.push(0, 0, 7.0);
        t.push(1, 2, 1.0);
        let b = t.to_csr();
        let s = a.add_scaled(2.0, &b, -3.0);
        let ad = a.to_dense();
        let bd = b.to_dense();
        for i in 0..3 {
            for j in 0..4 {
                let expect = 2.0 * ad[(i, j)] - 3.0 * bd[(i, j)];
                assert_eq!(s.to_dense()[(i, j)], expect, "at ({i}, {j})");
            }
        }
    }

    #[test]
    fn scale_rows_mut_matches_dense_and_skips_empty_rows() {
        let mut a = awkward();
        let before = a.to_dense();
        let s = [3.0, -0.5, 2.0];
        a.scale_rows_mut(&s);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(a.to_dense()[(i, j)], s[i] * before[(i, j)]);
            }
        }
        assert_eq!(a.nnz(), 3, "scaling must not change the pattern");
    }

    /// Property tests need the proptest engine; enable with
    /// `--features proptest`.
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn prop_spmv_adjoint(seed in 0u64..1000) {
                // <Ax, y> == <x, A^T y> for random sparse patterns.
                let n = 4 + (seed % 12) as usize;
                let mut t = Triplets::new(n, n);
                for k in 0..3 * n {
                    let i = (seed as usize * 7 + k * 13) % n;
                    let j = (seed as usize * 11 + k * 5) % n;
                    t.push(i, j, ((k % 9) as f64) - 4.0);
                }
                let a = t.to_csr();
                let x = DVec::from_fn(n, |i| (i as f64 * 0.3).sin());
                let y = DVec::from_fn(n, |i| 1.0 - 0.1 * i as f64);
                let lhs = a.matvec(&x).dot(&y);
                let rhs = x.dot(&a.matvec_t(&y));
                prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
            }

            #[test]
            fn prop_csr_dense_agree(seed in 0u64..1000) {
                let n = 3 + (seed % 8) as usize;
                let mut t = Triplets::new(n, n);
                for k in 0..2 * n {
                    t.push((seed as usize + k * 3) % n, (k * 7 + 1) % n, (k as f64) * 0.25 - 1.0);
                }
                let a = t.to_csr();
                let d = a.to_dense();
                let x = DVec::from_fn(n, |i| i as f64 + 1.0);
                let diff = &a.matvec(&x) - &d.matvec(&x).unwrap();
                prop_assert!(diff.norm2() < 1e-12);
            }
        }
    }
}

/// Incomplete LU factorization with zero fill-in (ILU(0)): `L` and `U`
/// share the sparsity pattern of the input matrix. Used as a GMRES/BiCGSTAB
/// preconditioner for the RBF-FD operators, whose stencil-based patterns
/// make ILU(0) markedly stronger than Jacobi.
#[derive(Debug, Clone)]
pub struct Ilu0 {
    /// Factored values on the original pattern (unit lower / upper).
    lu: Csr,
}

impl Ilu0 {
    /// Computes the factorization. Errors with
    /// [`LinalgError::SingularMatrix`] (carrying the failing pivot) if a
    /// pivot vanishes, or [`LinalgError::ShapeMismatch`] for a non-square
    /// input. Solver code that wants the graceful Jacobi fallback should go
    /// through [`crate::Preconditioner::ilu0_from`] — the single documented
    /// construction path.
    pub fn factor(a: &Csr) -> Result<Ilu0> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "ilu0",
                got: (n, a.ncols()),
                expected: (n, n),
            });
        }
        let singular = |pivot: usize, value: f64| LinalgError::SingularMatrix {
            pivot,
            value: value.abs(),
        };
        let mut lu = a.clone();
        // Gaussian elimination restricted to the existing pattern (IKJ).
        for i in 0..n {
            // Gather row i's columns for fast lookup.
            let (cols_i, _) = lu.row(i);
            let cols_i: Vec<usize> = cols_i.to_vec();
            for &k in &cols_i {
                if k >= i {
                    break; // columns are sorted: only k < i eliminate
                }
                // Pivot U[k][k].
                let ukk = lu.get(k, k).ok_or_else(|| singular(k, 0.0))?;
                if ukk.abs() < 1e-300 {
                    return Err(singular(k, ukk));
                }
                let factor = lu.get(i, k).expect("k is in row i's pattern") / ukk;
                lu.set(i, k, factor);
                // Row update within the pattern of row i.
                let (k_cols, k_vals): (Vec<usize>, Vec<f64>) = {
                    let (c, v) = lu.row(k);
                    (c.to_vec(), v.to_vec())
                };
                for (&j, &ukj) in k_cols.iter().zip(&k_vals) {
                    if j > k {
                        if let Some(aij) = lu.get(i, j) {
                            lu.set(i, j, aij - factor * ukj);
                        }
                    }
                }
            }
        }
        // Sanity: diagonal pivots present and nonzero.
        for i in 0..n {
            match lu.get(i, i) {
                Some(d) if d.abs() > 1e-300 => {}
                other => return Err(singular(i, other.unwrap_or(0.0))),
            }
        }
        Ok(Ilu0 { lu })
    }

    /// Applies `z = (LU)⁻¹ r` via the two triangular sweeps.
    pub fn solve(&self, r: &DVec) -> DVec {
        let mut y = DVec::zeros(r.len());
        self.solve_into(r, &mut y);
        y
    }

    /// [`Ilu0::solve`] into a caller-owned buffer (allocation-free; `out`
    /// must have the same length as `r`).
    pub fn solve_into(&self, r: &DVec, out: &mut DVec) {
        let n = self.lu.nrows();
        assert_eq!(r.len(), n, "ilu0 solve: length mismatch");
        assert_eq!(out.len(), n, "ilu0 solve: output length mismatch");
        let y = out;
        y.as_mut_slice().copy_from_slice(r);
        // Forward: L (unit diagonal) stored strictly below the diagonal.
        for i in 0..n {
            let (cols, vals) = self.lu.row(i);
            let mut s = y[i];
            for (&j, &v) in cols.iter().zip(vals) {
                if j < i {
                    s -= v * y[j];
                }
            }
            y[i] = s;
        }
        // Backward: U on/above the diagonal.
        for i in (0..n).rev() {
            let (cols, vals) = self.lu.row(i);
            let mut s = y[i];
            let mut diag = 1.0;
            for (&j, &v) in cols.iter().zip(vals) {
                if j > i {
                    s -= v * y[j];
                } else if j == i {
                    diag = v;
                }
            }
            y[i] = s / diag;
        }
    }

    /// Bytes held by the factored values/indices.
    pub fn memory_bytes(&self) -> usize {
        self.lu.nnz() * (8 + std::mem::size_of::<usize>())
            + (self.lu.nrows() + 1) * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod ilu_tests {
    use super::*;

    fn poisson_1d(n: usize) -> Csr {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn ilu0_is_exact_for_tridiagonal_matrices() {
        // A tridiagonal matrix has no fill-in, so ILU(0) = LU exactly.
        let n = 40;
        let a = poisson_1d(n);
        let f = Ilu0::factor(&a).unwrap();
        let b = DVec::from_fn(n, |i| (i as f64 * 0.3).sin());
        let x = f.solve(&b);
        let r = &a.matvec(&x) - &b;
        assert!(r.norm2() < 1e-12 * b.norm2(), "residual {}", r.norm2());
    }

    #[test]
    fn ilu0_preconditioning_accelerates_gmres() {
        use crate::iterative::{gmres, IterOpts, Preconditioner};
        // 2-D Poisson (5-point) — ILU(0) is approximate but much stronger
        // than Jacobi.
        let m = 20;
        let n = m * m;
        let mut t = Triplets::new(n, n);
        for i in 0..m {
            for j in 0..m {
                let k = i * m + j;
                t.push(k, k, 4.0);
                if i > 0 {
                    t.push(k, k - m, -1.0);
                }
                if i + 1 < m {
                    t.push(k, k + m, -1.0);
                }
                if j > 0 {
                    t.push(k, k - 1, -1.0);
                }
                if j + 1 < m {
                    t.push(k, k + 1, -1.0);
                }
            }
        }
        let a = t.to_csr();
        let b = DVec::full(n, 1.0);
        let opts = IterOpts::gmres().tol(1e-10);
        let plain = gmres(&a, &b, &Preconditioner::jacobi_from(&a), &opts).unwrap();
        let ilu = gmres(&a, &b, &Preconditioner::ilu0_from(&a), &opts).unwrap();
        assert!(
            ilu.iterations < plain.iterations,
            "ILU(0) {} should beat Jacobi {}",
            ilu.iterations,
            plain.iterations
        );
        assert!((&a.matvec(&ilu.x) - &b).norm2() < 1e-8 * b.norm2());
    }

    #[test]
    fn factor_rejects_structurally_singular_matrices() {
        // Zero diagonal entry in the pattern: the error names the pivot.
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        assert!(matches!(
            Ilu0::factor(&t.to_csr()),
            Err(crate::LinalgError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn factor_rejects_non_square_matrices() {
        let t = Triplets::new(2, 3);
        assert!(matches!(
            Ilu0::factor(&t.to_csr()),
            Err(crate::LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = poisson_1d(17);
        let f = Ilu0::factor(&a).unwrap();
        let r = DVec::from_fn(17, |i| (i as f64 * 0.4).cos());
        let z = f.solve(&r);
        let mut z2 = DVec::zeros(17);
        f.solve_into(&r, &mut z2);
        assert_eq!(z.as_slice(), z2.as_slice());
    }
}
