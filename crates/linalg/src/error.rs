//! Error type shared by the factorizations and solvers.

use std::fmt;

/// Errors produced by the linear algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes. Carries `(what, got, expected)`.
    ShapeMismatch {
        /// Operation that failed, e.g. `"matvec"`.
        op: &'static str,
        /// Offending dimensions as reported by the caller.
        got: (usize, usize),
        /// Dimensions that would have been accepted.
        expected: (usize, usize),
    },
    /// A factorization hit an (effectively) zero pivot at the given index.
    SingularMatrix {
        /// Pivot index where breakdown occurred.
        pivot: usize,
        /// Magnitude of the offending pivot.
        value: f64,
    },
    /// Cholesky was asked to factor a matrix that is not positive definite.
    NotPositiveDefinite {
        /// Row at which the failure was detected.
        row: usize,
    },
    /// An iterative solver failed to reach the requested tolerance.
    NotConverged {
        /// Solver name, e.g. `"gmres"`.
        solver: &'static str,
        /// Iterations actually performed.
        iterations: usize,
        /// Final relative residual.
        residual: f64,
    },
    /// An iterative solver broke down (division by a vanishing inner product).
    Breakdown {
        /// Solver name.
        solver: &'static str,
        /// Human-readable detail.
        detail: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, got, expected } => write!(
                f,
                "shape mismatch in {op}: got {}x{}, expected {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            LinalgError::SingularMatrix { pivot, value } => {
                write!(
                    f,
                    "singular matrix: pivot {pivot} has magnitude {value:.3e}"
                )
            }
            LinalgError::NotPositiveDefinite { row } => {
                write!(f, "matrix is not positive definite (detected at row {row})")
            }
            LinalgError::NotConverged {
                solver,
                iterations,
                residual,
            } => write!(
                f,
                "{solver} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            LinalgError::Breakdown { solver, detail } => {
                write!(f, "{solver} breakdown: {detail}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "matvec",
            got: (3, 4),
            expected: (4, 4),
        };
        assert!(e.to_string().contains("matvec"));
        let e = LinalgError::SingularMatrix {
            pivot: 7,
            value: 1e-20,
        };
        assert!(e.to_string().contains("pivot 7"));
        let e = LinalgError::NotConverged {
            solver: "gmres",
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("gmres"));
        let e = LinalgError::NotPositiveDefinite { row: 2 };
        assert!(e.to_string().contains("row 2"));
        let e = LinalgError::Breakdown {
            solver: "bicgstab",
            detail: "rho ~ 0",
        };
        assert!(e.to_string().contains("bicgstab"));
    }
}
