//! Dense factorizations: LU with partial pivoting, Cholesky, Householder QR.

use crate::blocking::{fused_axpy4, LU_TILE, MULAD_UNROLL, PAR_BLOCKS};
use crate::dense::DMat;
use crate::error::{LinalgError, Result};
use crate::vector::DVec;

/// LU factorization with partial (row) pivoting: `P A = L U`.
///
/// `Lu` is the backbone of the whole workspace: RBF collocation systems are
/// solved with it, and the differentiable-programming path in
/// `meshfree-autodiff` caches an `Lu` during the forward pass so the reverse
/// pass can run the adjoint solve `Aᵀ λ = x̄` via [`Lu::solve_transpose`]
/// without refactorizing.
///
/// Factor once, solve many: the collocation matrix of the Laplace control
/// problem is control-independent, so the optimal-control drivers factor it a
/// single time per run and reuse the factors across every optimizer
/// iteration (forward solves) and every adjoint solve (transpose solves).
/// State-dependent systems (Navier–Stokes Picard sweeps) instead reuse the
/// *storage* via [`Lu::refactor`].
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: DMat,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (±1), for determinants.
    sign: f64,
}

impl Lu {
    /// Factors a square matrix. Returns [`LinalgError::SingularMatrix`] if a
    /// pivot is smaller than `1e-300` in magnitude.
    pub fn factor(a: &DMat) -> Result<Lu> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu",
                got: a.shape(),
                expected: (n, n),
            });
        }
        // Span only the system-sized factorizations; RBF-FD factors
        // thousands of tiny per-stencil matrices that would flood a trace.
        let _span = (n >= 64).then(|| meshfree_runtime::trace::span("lu_factor"));
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let sign = factor_in_place(&mut lu, &mut perm)?;
        Ok(Lu { lu, perm, sign })
    }

    /// Refactors a new matrix of the same dimension **in place**, reusing the
    /// packed storage and permutation buffer of this factorization.
    ///
    /// This is the Navier–Stokes Picard hot path: the coupled matrix changes
    /// every sweep (it depends on the current state), so the factor cannot be
    /// cached — but the `(3N)²` storage can. Produces bit-identical factors
    /// to a fresh [`Lu::factor`] of the same matrix.
    pub fn refactor(&mut self, a: &DMat) -> Result<()> {
        let n = self.dim();
        if a.shape() != (n, n) {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_refactor",
                got: a.shape(),
                expected: (n, n),
            });
        }
        let _span = (n >= 64).then(|| meshfree_runtime::trace::span("lu_refactor"));
        self.lu.as_mut_slice().copy_from_slice(a.as_slice());
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        self.sign = factor_in_place(&mut self.lu, &mut self.perm)?;
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &DVec) -> Result<DVec> {
        let mut x = DVec::zeros(0);
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b`, writing the solution into a caller-owned buffer.
    ///
    /// `x` is resized to the system dimension; its previous contents are
    /// overwritten. Use this inside iteration loops (Picard sweeps, per-column
    /// multi-RHS solves) to avoid a fresh allocation per solve. Produces the
    /// same bits as [`Lu::solve`].
    pub fn solve_into(&self, b: &DVec, x: &mut DVec) -> Result<()> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                got: (b.len(), 1),
                expected: (n, 1),
            });
        }
        // Apply permutation, then forward (L, unit diag) and back (U) subs.
        x.0.resize(n, 0.0);
        for i in 0..n {
            x.0[i] = b[self.perm[i]];
        }
        for i in 1..n {
            let mut s = x[i];
            for (j, &lij) in self.lu.row(i)[..i].iter().enumerate() {
                s -= lij * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            let row = self.lu.row(i);
            for j in i + 1..n {
                s -= row[j] * x[j];
            }
            x[i] = s / row[i];
        }
        Ok(())
    }

    /// Solves `Aᵀ x = b` using the same factors (`Aᵀ = Uᵀ Lᵀ P`).
    ///
    /// This is the adjoint path: DAL's adjoint equation and the
    /// differentiable-programming reverse pass both solve with the transpose
    /// of the already-factored forward operator, so a run never pays for a
    /// second factorization.
    pub fn solve_transpose(&self, b: &DVec) -> Result<DVec> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_t",
                got: (b.len(), 1),
                expected: (n, 1),
            });
        }
        let mut y = b.clone();
        // Forward substitution with Uᵀ (lower triangular, non-unit diag).
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.lu[(j, i)] * y[j];
            }
            y[i] = s / self.lu[(i, i)];
        }
        // Back substitution with Lᵀ (upper triangular, unit diag).
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= self.lu[(j, i)] * y[j];
            }
            y[i] = s;
        }
        // Undo the permutation: x[perm[i]] = y[i].
        let mut x = DVec::zeros(n);
        for i in 0..n {
            x[self.perm[i]] = y[i];
        }
        Ok(x)
    }

    /// Solves `A xₖ = bₖ` for a batch of right-hand sides with blocked
    /// forward/back substitution: the factors stream through cache once
    /// per block of [`Lu::MULTI_RHS_BLOCK`] columns instead of once per
    /// column, which is where the serve batcher's coalesced same-operator
    /// requests win their throughput.
    ///
    /// Bitwise contract: every column's floating-point operation sequence
    /// is identical to a standalone [`Lu::solve`] of that column (columns
    /// are data-independent; blocking only reorders *between* columns),
    /// so batched and one-at-a-time answers match exactly.
    pub fn solve_many(&self, rhs: &[DVec]) -> Result<Vec<DVec>> {
        let n = self.dim();
        for b in rhs {
            if b.len() != n {
                return Err(LinalgError::ShapeMismatch {
                    op: "lu_solve_many",
                    got: (b.len(), 1),
                    expected: (n, 1),
                });
            }
        }
        let mut out = Vec::with_capacity(rhs.len());
        for block in rhs.chunks(Lu::MULTI_RHS_BLOCK) {
            let w = block.len();
            // Row-major n×w working block: x[i*w + c] is row i of column c.
            let mut x = vec![0.0; n * w];
            for (c, b) in block.iter().enumerate() {
                for i in 0..n {
                    x[i * w + c] = b[self.perm[i]];
                }
            }
            // Forward substitution with unit-diagonal L, all columns per row.
            for i in 1..n {
                let (head, tail) = x.split_at_mut(i * w);
                let xi = &mut tail[..w];
                for (j, &lij) in self.lu.row(i)[..i].iter().enumerate() {
                    let xj = &head[j * w..(j + 1) * w];
                    for c in 0..w {
                        xi[c] -= lij * xj[c];
                    }
                }
            }
            // Back substitution with U.
            for i in (0..n).rev() {
                let row = self.lu.row(i);
                let (head, tail) = x.split_at_mut((i + 1) * w);
                let xi = &mut head[i * w..];
                for j in i + 1..n {
                    let uij = row[j];
                    let xj = &tail[(j - i - 1) * w..(j - i) * w];
                    for c in 0..w {
                        xi[c] -= uij * xj[c];
                    }
                }
                let d = row[i];
                for v in xi.iter_mut() {
                    *v /= d;
                }
            }
            for c in 0..w {
                out.push(DVec::from_fn(n, |i| x[i * w + c]));
            }
        }
        Ok(out)
    }

    /// Column-block width of [`Lu::solve_many`]; see
    /// [`blocking::MULTI_RHS_BLOCK`](crate::blocking::MULTI_RHS_BLOCK),
    /// where all dense blocking constants now live.
    pub const MULTI_RHS_BLOCK: usize = crate::blocking::MULTI_RHS_BLOCK;

    /// Solves `A X = B` column by column.
    ///
    /// One right-hand-side buffer and one solution buffer are reused across
    /// all columns (previously each column allocated both).
    pub fn solve_mat(&self, b: &DMat) -> Result<DMat> {
        let n = self.dim();
        if b.nrows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_mat",
                got: b.shape(),
                expected: (n, b.ncols()),
            });
        }
        let mut out = DMat::zeros(n, b.ncols());
        let mut col = DVec::zeros(n);
        let mut x = DVec::zeros(n);
        for j in 0..b.ncols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            self.solve_into(&col, &mut x)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Inverse of the factored matrix (use sparingly; solves are cheaper).
    pub fn inverse(&self) -> Result<DMat> {
        self.solve_mat(&DMat::eye(self.dim()))
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Estimates the 1-norm condition number `κ₁(A) ≈ ‖A‖₁ ‖A⁻¹‖₁` using a
    /// few rounds of Hager's power iteration on `A⁻¹` (via the factors).
    ///
    /// RBF collocation matrices with polyharmonic splines are famously
    /// ill-conditioned; this estimate is surfaced to users for diagnostics
    /// (the paper notes the regular grid "resulted in better conditioned
    /// collocation matrices compared with a scattered point cloud").
    pub fn cond_1_estimate(&self, norm1_a: f64) -> f64 {
        let n = self.dim();
        if n == 0 {
            return 0.0;
        }
        let mut x = DVec::full(n, 1.0 / n as f64);
        let mut est = 0.0;
        for _ in 0..5 {
            let y = match self.solve(&x) {
                Ok(y) => y,
                Err(_) => return f64::INFINITY,
            };
            est = y.norm1();
            let xi = y.map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
            let z = match self.solve_transpose(&xi) {
                Ok(z) => z,
                Err(_) => return f64::INFINITY,
            };
            // Hager: move mass to the coordinate with the largest |z|.
            let mut jmax = 0;
            for j in 1..n {
                if z[j].abs() > z[jmax].abs() {
                    jmax = j;
                }
            }
            if z.norm_inf() <= z.dot(&x) {
                break;
            }
            x = DVec::zeros(n);
            x[jmax] = 1.0;
        }
        norm1_a * est
    }
}

/// Trailing-update work (rows × columns) above which the elimination step
/// goes through the shared pool. Mirrors [`DMat::PAR_THRESHOLD`].
const LU_PAR_THRESHOLD: usize = DMat::PAR_THRESHOLD;

/// Tiled right-looking Gaussian elimination with partial pivoting on packed
/// storage (the LAPACK `getrf` shape, grown here without BLAS). Shared by
/// [`Lu::factor`] (fresh storage) and [`Lu::refactor`] (reused storage);
/// returns the permutation sign.
///
/// Each outer step processes one [`LU_TILE`]-wide panel:
///
/// 1. **Panel** — unblocked elimination of the panel columns over the full
///    remaining row range (pivot search, row swap, multipliers, rank-1
///    update restricted to the panel), exactly as the classic algorithm
///    but touching only `kb` columns per row.
/// 2. **U₁₂** — triangular update of the panel rows' trailing columns by
///    the unit-lower panel factor.
/// 3. **Trailing GEMM** — `A₂₂ -= L₂₁ · U₁₂` in one blocked pass with
///    [`MULAD_UNROLL`]-wide fused multiplier chains ([`fused_axpy4`]),
///    so the trailing matrix streams through cache once per panel instead
///    of once per column.
///
/// The trailing update is row-partitioned across the pool into at most
/// [`PAR_BLOCKS`] fixed blocks once the remaining work is large enough.
/// Each row's arithmetic is independent of the partitioning, so the
/// factors are bit-identical for any pool width.
fn factor_in_place(lu: &mut DMat, perm: &mut [usize]) -> Result<f64> {
    let n = lu.nrows();
    let mut sign = 1.0;
    let a = lu.as_mut_slice();
    for ks in (0..n).step_by(LU_TILE) {
        let kb = LU_TILE.min(n - ks);
        let ke = ks + kb;
        // --- 1. Panel factorization: columns ks..ke, rows ks..n. ---
        for k in ks..ke {
            // Partial pivoting: largest magnitude in column k at or below
            // the diagonal.
            let mut p = k;
            let mut pmax = a[k * n + k].abs();
            for i in k + 1..n {
                let v = a[i * n + k].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < 1e-300 {
                return Err(LinalgError::SingularMatrix {
                    pivot: k,
                    value: pmax,
                });
            }
            if p != k {
                perm.swap(k, p);
                sign = -sign;
                let (lo, hi) = a.split_at_mut(p * n);
                lo[k * n..(k + 1) * n].swap_with_slice(&mut hi[..n]);
            }
            let pivot = a[k * n + k];
            // Multipliers: column k below the diagonal.
            for i in k + 1..n {
                a[i * n + k] /= pivot;
            }
            // Rank-1 update restricted to the remaining panel columns; the
            // columns right of the panel wait for the blocked step 3.
            if k + 1 < ke && k + 1 < n {
                let (top, bot) = a.split_at_mut((k + 1) * n);
                let krow = &top[k * n + k + 1..k * n + ke];
                for row in bot[..(n - k - 1) * n].chunks_exact_mut(n) {
                    let m = row[k];
                    if m != 0.0 {
                        for (u, x) in krow.iter().zip(&mut row[k + 1..ke]) {
                            *x -= m * u;
                        }
                    }
                }
            }
        }
        if ke == n {
            break;
        }
        // --- 2. U₁₂ update: rows ks+1..ke, columns ke..n, by the unit
        // lower triangle of the panel (row i accumulates rows ks..i). ---
        for i in ks + 1..ke {
            let (head, tail) = a.split_at_mut(i * n);
            let (li, ui) = tail[..n].split_at_mut(ke);
            for j in ks..i {
                let m = li[j];
                if m != 0.0 {
                    let uj = &head[j * n + ke..(j + 1) * n];
                    for (x, u) in ui.iter_mut().zip(uj) {
                        *x -= m * u;
                    }
                }
            }
        }
        // --- 3. Trailing GEMM: rows ke..n, columns ke..n get
        // `A₂₂ -= L₂₁ · U₁₂` with fused 4-wide multiplier chains. ---
        let m_rows = n - ke;
        let (top, bot) = a.split_at_mut(ke * n);
        let panel_rows: &[f64] = top;
        let trailing = &mut bot[..m_rows * n];
        let update_row = |row: &mut [f64]| {
            let (l, out) = row.split_at_mut(ke);
            let l = &l[ks..];
            let mut p = 0;
            while p + MULAD_UNROLL <= kb {
                let m = [l[p], l[p + 1], l[p + 2], l[p + 3]];
                let r0 = &panel_rows[(ks + p) * n + ke..(ks + p + 1) * n];
                let r1 = &panel_rows[(ks + p + 1) * n + ke..(ks + p + 2) * n];
                let r2 = &panel_rows[(ks + p + 2) * n + ke..(ks + p + 3) * n];
                let r3 = &panel_rows[(ks + p + 3) * n + ke..(ks + p + 4) * n];
                fused_axpy4(out, m, r0, r1, r2, r3);
                p += MULAD_UNROLL;
            }
            while p < kb {
                let m = l[p];
                if m != 0.0 {
                    let rp = &panel_rows[(ks + p) * n + ke..(ks + p + 1) * n];
                    for (x, u) in out.iter_mut().zip(rp) {
                        *x -= m * u;
                    }
                }
                p += 1;
            }
        };
        if m_rows * (n - ke) * kb >= LU_PAR_THRESHOLD {
            // Fixed row-block decomposition (at most PAR_BLOCKS blocks),
            // independent of the thread count.
            let block = m_rows.div_ceil(PAR_BLOCKS).max(1) * n;
            meshfree_runtime::par::par_chunks_mut(trailing, block, |_, piece| {
                for row in piece.chunks_exact_mut(n) {
                    update_row(row);
                }
            });
        } else {
            for row in trailing.chunks_exact_mut(n) {
                update_row(row);
            }
        }
    }
    Ok(sign)
}

/// Cholesky factorization `A = L Lᵀ` for symmetric positive definite systems.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: DMat,
}

impl Cholesky {
    /// Factors an SPD matrix; only the lower triangle of `a` is read.
    pub fn factor(a: &DMat) -> Result<Cholesky> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky",
                got: a.shape(),
                expected: (n, n),
            });
        }
        let mut l = DMat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { row: i });
                    }
                    l[(i, i)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Solves `A x = b` via two triangular solves.
    pub fn solve(&self, b: &DVec) -> Result<DVec> {
        let n = self.l.nrows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                got: (b.len(), 1),
                expected: (n, 1),
            });
        }
        let mut y = b.clone();
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= self.l[(j, i)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Borrow the lower-triangular factor.
    pub fn l(&self) -> &DMat {
        &self.l
    }
}

/// Householder QR factorization, usable for least squares (`m >= n`).
///
/// The RBF-FD stencil-weight computation solves many small, possibly
/// rank-deficient-ish local systems; QR is the numerically safe option there.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed Householder vectors (below diagonal) and R (upper triangle).
    qr: DMat,
    /// Householder scalars `beta_k`.
    beta: Vec<f64>,
}

impl Qr {
    /// Factors an `m x n` matrix with `m >= n`.
    pub fn factor(a: &DMat) -> Result<Qr> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr",
                got: (m, n),
                expected: (n, n),
            });
        }
        let mut qr = a.clone();
        let mut beta = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector annihilating below (k,k).
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm < 1e-300 {
                return Err(LinalgError::SingularMatrix {
                    pivot: k,
                    value: norm,
                });
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            qr[(k, k)] = alpha;
            // Store v (with v0 implicit scaling) below the diagonal.
            for i in k + 1..m {
                qr[(i, k)] /= v0;
            }
            beta[k] = -v0 / alpha;
            // Apply the reflector to the trailing columns.
            for j in k + 1..n {
                let mut s = qr[(k, j)];
                for i in k + 1..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= beta[k];
                qr[(k, j)] -= s;
                for i in k + 1..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Ok(Qr { qr, beta })
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    pub fn solve_least_squares(&self, b: &DVec) -> Result<DVec> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve",
                got: (b.len(), 1),
                expected: (m, 1),
            });
        }
        // y = Qᵀ b by applying each reflector.
        let mut y = b.clone();
        for k in 0..n {
            let mut s = y[k];
            for i in k + 1..m {
                s += self.qr[(i, k)] * y[i];
            }
            s *= self.beta[k];
            y[k] -= s;
            for i in k + 1..m {
                let vik = self.qr[(i, k)];
                y[i] -= s * vik;
            }
        }
        // Back substitution with R.
        let mut x = DVec::zeros(n);
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= self.qr[(i, j)] * x[j];
            }
            x[i] = s / self.qr[(i, i)];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_like_matrix(n: usize, seed: u64) -> DMat {
        // Deterministic, well-scaled, diagonally nudged test matrix.
        DMat::from_fn(n, n, |i, j| {
            let v = (((seed as usize + 1) * (i * 131 + j * 31 + 7)) % 997) as f64 / 997.0 - 0.5;
            if i == j {
                v + 2.0
            } else {
                v
            }
        })
    }

    #[test]
    fn lu_reconstruction_small() {
        let a = DMat::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&DVec(vec![5.0, -2.0, 9.0])).unwrap();
        let r = &a.matvec(&x).unwrap() - &DVec(vec![5.0, -2.0, 9.0]);
        assert!(r.norm2() < 1e-12);
    }

    #[test]
    fn lu_solve_transpose_matches_explicit_transpose() {
        let a = random_like_matrix(12, 3);
        let at = a.transpose();
        let b = DVec::from_fn(12, |i| (i as f64).cos());
        let lu = Lu::factor(&a).unwrap();
        let lut = Lu::factor(&at).unwrap();
        let x1 = lu.solve_transpose(&b).unwrap();
        let x2 = lut.solve(&b).unwrap();
        assert!((&x1 - &x2).norm2() < 1e-10);
    }

    #[test]
    fn lu_det_known() {
        let a = DMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
        // Permutation sign: swapping rows flips the determinant's sign.
        let b = DMat::from_rows(&[vec![3.0, 4.0], vec![1.0, 2.0]]);
        assert!((Lu::factor(&b).unwrap().det() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lu_singular_detection() {
        let a = DMat::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            Lu::factor(&a),
            Err(LinalgError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn lu_inverse_roundtrip() {
        let a = random_like_matrix(6, 11);
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let id = a.matmul(&inv).unwrap();
        assert!((&id - &DMat::eye(6)).norm_fro() < 1e-10);
    }

    #[test]
    fn lu_multi_rhs() {
        let a = random_like_matrix(5, 2);
        let b = DMat::from_fn(5, 3, |i, j| (i + j) as f64);
        let x = Lu::factor(&a).unwrap().solve_mat(&b).unwrap();
        let r = &a.matmul(&x).unwrap() - &b;
        assert!(r.norm_fro() < 1e-10);
    }

    #[test]
    fn refactor_matches_fresh_factor_bitwise() {
        let a = random_like_matrix(20, 3);
        let b = random_like_matrix(20, 9);
        let mut lu = Lu::factor(&a).unwrap();
        lu.refactor(&b).unwrap();
        let fresh = Lu::factor(&b).unwrap();
        let rhs = DVec::from_fn(20, |i| (i as f64).sin());
        assert_eq!(
            lu.solve(&rhs).unwrap().as_slice(),
            fresh.solve(&rhs).unwrap().as_slice()
        );
        assert_eq!(lu.det(), fresh.det());
    }

    #[test]
    fn refactor_rejects_wrong_shape() {
        let mut lu = Lu::factor(&random_like_matrix(4, 1)).unwrap();
        assert!(lu.refactor(&DMat::zeros(5, 5)).is_err());
    }

    #[test]
    fn solve_many_is_bitwise_identical_to_column_loop() {
        // More columns than MULTI_RHS_BLOCK so the chunking path runs, and
        // a system large enough that pivoting genuinely permutes rows.
        let n = 60;
        let a = random_like_matrix(n, 13);
        let lu = Lu::factor(&a).unwrap();
        let rhs: Vec<DVec> = (0..Lu::MULTI_RHS_BLOCK + 3)
            .map(|k| DVec::from_fn(n, |i| ((i * 7 + k * 13) % 23) as f64 * 0.4 - 3.0))
            .collect();
        let batched = lu.solve_many(&rhs).unwrap();
        assert_eq!(batched.len(), rhs.len());
        for (b, x) in rhs.iter().zip(&batched) {
            assert_eq!(x.as_slice(), lu.solve(b).unwrap().as_slice());
        }
    }

    #[test]
    fn solve_many_rejects_wrong_length_rhs() {
        let lu = Lu::factor(&random_like_matrix(6, 1)).unwrap();
        let rhs = [DVec::zeros(6), DVec::zeros(5)];
        assert!(lu.solve_many(&rhs).is_err());
    }

    #[test]
    fn solve_into_matches_solve_and_reuses_buffer() {
        let a = random_like_matrix(9, 7);
        let lu = Lu::factor(&a).unwrap();
        let mut x = DVec::zeros(0);
        for s in 0..3 {
            let b = DVec::from_fn(9, |i| (i + s) as f64 * 0.3 - 1.0);
            lu.solve_into(&b, &mut x).unwrap();
            assert_eq!(x.as_slice(), lu.solve(&b).unwrap().as_slice());
        }
    }

    /// Classic unblocked Gaussian elimination with partial pivoting — the
    /// reference the tiled implementation is checked against.
    fn naive_lu_solve(a: &DMat, b: &DVec) -> DVec {
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut p = k;
            for i in k + 1..n {
                if lu[(i, k)].abs() > lu[(p, k)].abs() {
                    p = i;
                }
            }
            assert!(lu[(p, k)].abs() >= 1e-300, "reference hit a zero pivot");
            if p != k {
                perm.swap(k, p);
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                lu[(i, k)] /= pivot;
                let m = lu[(i, k)];
                for j in k + 1..n {
                    lu[(i, j)] -= m * lu[(k, j)];
                }
            }
        }
        let mut x = DVec::from_fn(n, |i| b[perm[i]]);
        for i in 1..n {
            for j in 0..i {
                let m = lu[(i, j)] * x[j];
                x[i] -= m;
            }
        }
        for i in (0..n).rev() {
            for j in i + 1..n {
                let m = lu[(i, j)] * x[j];
                x[i] -= m;
            }
            x[i] /= lu[(i, i)];
        }
        x
    }

    #[test]
    fn tiled_lu_matches_naive_reference() {
        // Sizes straddling the panel width: sub-tile, exact multiples,
        // ragged final panels, and a multi-panel system.
        for n in [3, 47, 48, 49, 96, 131] {
            for seed in [1u64, 4, 9] {
                let a = random_like_matrix(n, seed);
                let b = DVec::from_fn(n, |i| ((i * 5 + 3) % 11) as f64 - 4.0);
                let x_tiled = Lu::factor(&a).unwrap().solve(&b).unwrap();
                let x_naive = naive_lu_solve(&a, &b);
                let rel = (&x_tiled - &x_naive).norm2() / x_naive.norm2().max(1e-300);
                assert!(rel <= 1e-13, "n={n} seed={seed}: rel diff {rel}");
            }
        }
    }

    #[test]
    fn parallel_trailing_update_matches_serial_bitwise() {
        // n large enough that the first elimination steps cross
        // LU_PAR_THRESHOLD and run through the pool.
        let n = 300;
        let a = random_like_matrix(n, 5);
        let b = DVec::from_fn(n, |i| (i as f64 * 0.11).cos());
        let x_par = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let x_ser =
            meshfree_runtime::par::serial_scope(|| Lu::factor(&a).unwrap().solve(&b).unwrap());
        assert_eq!(x_par.as_slice(), x_ser.as_slice());
    }

    #[test]
    fn lu_condition_estimate_identity_is_order_one() {
        let id = DMat::eye(8);
        let lu = Lu::factor(&id).unwrap();
        let c = lu.cond_1_estimate(id.norm_1());
        assert!((0.9..=1.5).contains(&c), "cond(I) estimate was {c}");
    }

    #[test]
    fn lu_condition_estimate_detects_ill_conditioning() {
        // diag(1, eps): condition = 1/eps.
        let a = DMat::from_diag(&[1.0, 1e-8]);
        let lu = Lu::factor(&a).unwrap();
        let c = lu.cond_1_estimate(a.norm_1());
        assert!(c > 1e7, "estimate {c} should be ~1e8");
    }

    #[test]
    fn cholesky_solves_spd() {
        // A = M^T M + I is SPD.
        let m = random_like_matrix(7, 5);
        let a = &m.transpose().matmul(&m).unwrap() + &DMat::eye(7);
        let chol = Cholesky::factor(&a).unwrap();
        let b = DVec::from_fn(7, |i| i as f64 - 3.0);
        let x = chol.solve(&b).unwrap();
        assert!((&a.matvec(&x).unwrap() - &b).norm2() < 1e-9);
        // L L^T reconstructs A.
        let rec = chol.l().matmul(&chol.l().transpose()).unwrap();
        assert!((&rec - &a).norm_fro() < 1e-8 * a.norm_fro());
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DMat::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn qr_solves_square_system() {
        let a = random_like_matrix(9, 4);
        let b = DVec::from_fn(9, |i| (i as f64 * 0.7).sin());
        let x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!((&a.matvec(&x).unwrap() - &b).norm2() < 1e-9);
    }

    #[test]
    fn qr_least_squares_matches_normal_equations() {
        // Overdetermined fit: line through noisy-ish points.
        let m = 20;
        let a = DMat::from_fn(m, 2, |i, j| if j == 0 { 1.0 } else { i as f64 });
        let b = DVec::from_fn(m, |i| 3.0 + 2.0 * i as f64);
        let x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn qr_rejects_underdetermined() {
        assert!(Qr::factor(&DMat::zeros(2, 3)).is_err());
    }

    /// Property tests need the proptest engine; enable with
    /// `--features proptest`.
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn prop_lu_solve_residual_small(seed in 0u64..5000, n in 2usize..24) {
                let a = random_like_matrix(n, seed);
                let b = DVec::from_fn(n, |i| ((seed as usize + i) % 17) as f64 - 8.0);
                let lu = Lu::factor(&a).unwrap();
                let x = lu.solve(&b).unwrap();
                let r = &a.matvec(&x).unwrap() - &b;
                prop_assert!(r.norm2() < 1e-8 * (1.0 + b.norm2()));
            }

            #[test]
            fn prop_lu_transpose_adjoint_identity(seed in 0u64..5000, n in 2usize..16) {
                // <A^{-1} b, c> == <b, A^{-T} c> — exactly the identity the
                // autodiff solve-adjoint relies on.
                let a = random_like_matrix(n, seed);
                let b = DVec::from_fn(n, |i| (i as f64 + 1.0).recip());
                let c = DVec::from_fn(n, |i| ((i * i) % 7) as f64 - 3.0);
                let lu = Lu::factor(&a).unwrap();
                let lhs = lu.solve(&b).unwrap().dot(&c);
                let rhs = b.dot(&lu.solve_transpose(&c).unwrap());
                prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
            }

            #[test]
            fn prop_det_product_rule(seed in 0u64..2000, n in 2usize..8) {
                let a = random_like_matrix(n, seed);
                let b = random_like_matrix(n, seed + 7);
                let da = Lu::factor(&a).unwrap().det();
                let db = Lu::factor(&b).unwrap().det();
                let dab = Lu::factor(&a.matmul(&b).unwrap()).unwrap().det();
                prop_assert!((dab - da * db).abs() < 1e-6 * (1.0 + dab.abs()));
            }
        }
    }
}
