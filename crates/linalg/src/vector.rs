//! Dense vectors and BLAS-1 style kernels.

use std::ops::{Add, AddAssign, Deref, DerefMut, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// An owned dense `f64` vector.
///
/// `DVec` is a thin wrapper around `Vec<f64>` that adds the numerical
/// operations the rest of the workspace needs (dot products, norms, `axpy`,
/// elementwise arithmetic). It derefs to `[f64]` so slice APIs keep working.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DVec(pub Vec<f64>);

impl DVec {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        DVec(vec![0.0; n])
    }

    /// Creates a vector of `n` copies of `value`.
    pub fn full(n: usize, value: f64) -> Self {
        DVec(vec![value; n])
    }

    /// Creates a vector from a function of the index.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> f64) -> Self {
        DVec((0..n).map(f).collect())
    }

    /// `n` evenly spaced points from `a` to `b` inclusive.
    ///
    /// With `n == 1` the single point is `a`.
    pub fn linspace(a: f64, b: f64, n: usize) -> Self {
        if n == 0 {
            return DVec(Vec::new());
        }
        if n == 1 {
            return DVec(vec![a]);
        }
        let h = (b - a) / (n - 1) as f64;
        DVec::from_fn(n, |i| a + h * i as f64)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Euclidean inner product. Panics on length mismatch.
    pub fn dot(&self, other: &DVec) -> f64 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.0.iter().zip(other.0.iter()).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (2-)norm.
    pub fn norm2(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Euclidean inner product through the pool: the vector is cut into
    /// fixed [`crate::blocking::REDUCE_BLOCK`]-element blocks whose
    /// [`crate::blocking::dot8`] partials are summed in block order, so
    /// the bits depend only on the length — never the pool width. GMRES
    /// runs its Arnoldi orthogonalization on this.
    ///
    /// Not a drop-in replacement for [`DVec::dot`]: the blocked summation
    /// order differs from the sequential one, so swapping them changes
    /// results at ulp scale. Panics on length mismatch.
    pub fn par_dot(&self, other: &DVec) -> f64 {
        assert_eq!(self.len(), other.len(), "par_dot: length mismatch");
        meshfree_runtime::par::par_block_sums(
            self.len(),
            crate::blocking::REDUCE_BLOCK,
            |lo, hi| crate::blocking::dot8(&self.0[lo..hi], &other.0[lo..hi]),
        )
    }

    /// Euclidean norm via [`DVec::par_dot`]; same fixed-block determinism
    /// contract, same ulp-scale difference from [`DVec::norm2`].
    pub fn par_norm2(&self) -> f64 {
        self.par_dot(self).sqrt()
    }

    /// 1-norm (sum of absolute values).
    pub fn norm1(&self) -> f64 {
        self.0.iter().map(|x| x.abs()).sum()
    }

    /// Infinity norm (max absolute value); 0 for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.0.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Root-mean-square of the entries; 0 for the empty vector.
    pub fn rms(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.dot(self) / self.len() as f64).sqrt()
        }
    }

    /// `self += alpha * x` (the BLAS `axpy`). Panics on length mismatch.
    pub fn axpy(&mut self, alpha: f64, x: &DVec) {
        assert_eq!(self.len(), x.len(), "axpy: length mismatch");
        for (s, xi) in self.0.iter_mut().zip(x.0.iter()) {
            *s += alpha * xi;
        }
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale_mut(&mut self, alpha: f64) {
        for s in &mut self.0 {
            *s *= alpha;
        }
    }

    /// Returns `alpha * self` as a new vector.
    pub fn scaled(&self, alpha: f64) -> DVec {
        DVec(self.0.iter().map(|x| alpha * x).collect())
    }

    /// Elementwise (Hadamard) product. Panics on length mismatch.
    pub fn hadamard(&self, other: &DVec) -> DVec {
        assert_eq!(self.len(), other.len(), "hadamard: length mismatch");
        DVec(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a * b)
                .collect(),
        )
    }

    /// Applies `f` to every entry, returning a new vector.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DVec {
        DVec(self.0.iter().map(|&x| f(x)).collect())
    }

    /// Sum of entries.
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Arithmetic mean; 0 for the empty vector.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Maximum entry; `NEG_INFINITY` for the empty vector.
    pub fn max(&self) -> f64 {
        self.0.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x))
    }

    /// Minimum entry; `INFINITY` for the empty vector.
    pub fn min(&self) -> f64 {
        self.0.iter().fold(f64::INFINITY, |m, &x| m.min(x))
    }

    /// Fills the vector with `value`.
    pub fn fill(&mut self, value: f64) {
        self.0.fill(value);
    }

    /// Consumes the wrapper and returns the inner `Vec`.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// Borrow as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Borrow as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.0.iter().any(|x| !x.is_finite())
    }
}

impl From<Vec<f64>> for DVec {
    fn from(v: Vec<f64>) -> Self {
        DVec(v)
    }
}

impl From<&[f64]> for DVec {
    fn from(v: &[f64]) -> Self {
        DVec(v.to_vec())
    }
}

impl FromIterator<f64> for DVec {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        DVec(iter.into_iter().collect())
    }
}

impl Deref for DVec {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.0
    }
}

impl DerefMut for DVec {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.0
    }
}

impl Index<usize> for DVec {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for DVec {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl Add<&DVec> for &DVec {
    type Output = DVec;
    fn add(self, rhs: &DVec) -> DVec {
        assert_eq!(self.len(), rhs.len(), "add: length mismatch");
        DVec(
            self.0
                .iter()
                .zip(rhs.0.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }
}

impl Sub<&DVec> for &DVec {
    type Output = DVec;
    fn sub(self, rhs: &DVec) -> DVec {
        assert_eq!(self.len(), rhs.len(), "sub: length mismatch");
        DVec(
            self.0
                .iter()
                .zip(rhs.0.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }
}

impl Mul<f64> for &DVec {
    type Output = DVec;
    fn mul(self, rhs: f64) -> DVec {
        self.scaled(rhs)
    }
}

impl Neg for &DVec {
    type Output = DVec;
    fn neg(self) -> DVec {
        self.scaled(-1.0)
    }
}

impl AddAssign<&DVec> for DVec {
    fn add_assign(&mut self, rhs: &DVec) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&DVec> for DVec {
    fn sub_assign(&mut self, rhs: &DVec) {
        self.axpy(-1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_full_from_fn() {
        assert_eq!(DVec::zeros(3).0, vec![0.0; 3]);
        assert_eq!(DVec::full(2, 1.5).0, vec![1.5, 1.5]);
        assert_eq!(DVec::from_fn(3, |i| i as f64).0, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = DVec::linspace(0.0, 1.0, 5);
        assert_eq!(v.len(), 5);
        assert!((v[0] - 0.0).abs() < 1e-15);
        assert!((v[4] - 1.0).abs() < 1e-15);
        assert!((v[1] - 0.25).abs() < 1e-15);
        assert_eq!(DVec::linspace(2.0, 3.0, 1).0, vec![2.0]);
        assert!(DVec::linspace(0.0, 1.0, 0).is_empty());
    }

    #[test]
    fn dot_and_norms() {
        let a = DVec(vec![3.0, 4.0]);
        assert!((a.norm2() - 5.0).abs() < 1e-15);
        assert!((a.norm1() - 7.0).abs() < 1e-15);
        assert!((a.norm_inf() - 4.0).abs() < 1e-15);
        let b = DVec(vec![1.0, -1.0]);
        assert!((a.dot(&b) + 1.0).abs() < 1e-15);
        assert!((a.rms() - (12.5f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn axpy_scale_hadamard() {
        let mut a = DVec(vec![1.0, 2.0]);
        a.axpy(2.0, &DVec(vec![10.0, 20.0]));
        assert_eq!(a.0, vec![21.0, 42.0]);
        a.scale_mut(0.5);
        assert_eq!(a.0, vec![10.5, 21.0]);
        let h = a.hadamard(&DVec(vec![2.0, 0.0]));
        assert_eq!(h.0, vec![21.0, 0.0]);
    }

    #[test]
    fn arithmetic_operators() {
        let a = DVec(vec![1.0, 2.0]);
        let b = DVec(vec![3.0, 5.0]);
        assert_eq!((&a + &b).0, vec![4.0, 7.0]);
        assert_eq!((&b - &a).0, vec![2.0, 3.0]);
        assert_eq!((&a * 3.0).0, vec![3.0, 6.0]);
        assert_eq!((-&a).0, vec![-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.0, vec![4.0, 7.0]);
        c -= &b;
        assert_eq!(c.0, a.0);
    }

    #[test]
    fn reductions() {
        let v = DVec(vec![1.0, -2.0, 4.0]);
        assert_eq!(v.sum(), 3.0);
        assert_eq!(v.mean(), 1.0);
        assert_eq!(v.max(), 4.0);
        assert_eq!(v.min(), -2.0);
    }

    #[test]
    fn non_finite_detection() {
        assert!(!DVec(vec![1.0, 2.0]).has_non_finite());
        assert!(DVec(vec![1.0, f64::NAN]).has_non_finite());
        assert!(DVec(vec![f64::INFINITY]).has_non_finite());
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_length_mismatch_panics() {
        DVec::zeros(2).dot(&DVec::zeros(3));
    }

    /// Property tests need the proptest engine; enable with
    /// `--features proptest`.
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_cauchy_schwarz(x in proptest::collection::vec(-1e3f64..1e3, 1..32),
                                   y_seed in proptest::collection::vec(-1e3f64..1e3, 1..32)) {
                let n = x.len().min(y_seed.len());
                let a = DVec(x[..n].to_vec());
                let b = DVec(y_seed[..n].to_vec());
                prop_assert!(a.dot(&b).abs() <= a.norm2() * b.norm2() + 1e-6);
            }

            #[test]
            fn prop_axpy_matches_definition(x in proptest::collection::vec(-1e3f64..1e3, 1..32),
                                            alpha in -10.0f64..10.0) {
                let a = DVec(x.clone());
                let mut b = DVec::zeros(x.len());
                b.axpy(alpha, &a);
                for i in 0..x.len() {
                    prop_assert!((b[i] - alpha * x[i]).abs() <= 1e-9 * (1.0 + x[i].abs()));
                }
            }

            #[test]
            fn prop_norm_triangle_inequality(x in proptest::collection::vec(-1e3f64..1e3, 1..32)) {
                let a = DVec(x.clone());
                let b = a.map(|v| v * 0.5 - 1.0);
                prop_assert!((&a + &b).norm2() <= a.norm2() + b.norm2() + 1e-9);
            }
        }
    }
}
