//! The one place dense-kernel blocking is tuned.
//!
//! Three families of constants used to live scattered across the
//! workspace — the multi-RHS column block in `factor.rs`, the ≤64-chunk
//! fixed parallel decomposition repeated in LU and the RBF assembly
//! paths, and (new with the blocked kernels) the LU/matmul tile sizes.
//! They are gathered here so cache-tuning happens in one module, with the
//! determinism contract each constant participates in spelled out.
//!
//! # Tiling scheme (DESIGN.md §16)
//!
//! * [`LU_TILE`] — panel width of the tiled right-looking LU. Each outer
//!   step factors an `n×LU_TILE` panel unblocked, triangular-updates the
//!   `LU_TILE×(n−k)` U₁₂ strip, then applies one blocked GEMM-style
//!   update to the trailing submatrix with [`MULAD_UNROLL`]-wide fused
//!   multiplier chains. The trailing matrix streams through cache
//!   `n/LU_TILE` times instead of `n` times.
//! * [`MULAD_UNROLL`] — how many rank-1 updates the trailing kernels
//!   fuse per pass over an output row. Four multipliers per pass cuts
//!   output-row memory traffic 4× and gives the compiler independent
//!   mul-add chains to pipeline.
//! * [`SIMD_LANES`] — accumulator lanes of the chunks-of-8 dot kernel
//!   ([`dot8`]): eight independent partial sums the compiler keeps in
//!   SIMD registers, combined in a fixed tree. Eight lanes = one AVX-512
//!   register or two AVX2 registers of `f64`.
//! * [`MULTI_RHS_BLOCK`] — column width of `Lu::solve_many`'s blocked
//!   substitution: wide enough to amortize streaming the `n²` factors,
//!   small enough that the `n×block` working set stays cache-resident.
//! * [`PAR_BLOCKS`] — every parallel kernel decomposes its row range
//!   into *at most this many* fixed blocks (`rows.div_ceil(PAR_BLOCKS)`
//!   rows each), so chunk boundaries depend only on the problem size,
//!   never the pool width — the bitwise pool-width-invariance contract.
//! * [`REDUCE_BLOCK`] — element count per partial sum of the fixed-block
//!   parallel reductions (GMRES orthogonalization dots and norms via
//!   `runtime::par::par_block_sums`). The summation tree is a function
//!   of the vector length alone, so reductions are bit-identical at any
//!   pool width.

/// Panel width of the tiled right-looking LU factorization.
pub const LU_TILE: usize = 48;

/// Fused multiplier chains per pass of the trailing-update kernels
/// (blocked LU trailing GEMM and `DMat::matmul`).
pub const MULAD_UNROLL: usize = 4;

/// Accumulator lanes of the chunks-of-8 [`dot8`] kernel.
pub const SIMD_LANES: usize = 8;

/// Column-block width of `Lu::solve_many` (formerly
/// `Lu::MULTI_RHS_BLOCK`, which now re-exports this).
pub const MULTI_RHS_BLOCK: usize = 8;

/// Maximum fixed block count of every parallel row decomposition
/// (formerly the literal `64` repeated in `factor.rs`, `rbf::fd` and
/// `rbf::operators`).
pub const PAR_BLOCKS: usize = 64;

/// Elements per partial sum in fixed-block parallel reductions.
pub const REDUCE_BLOCK: usize = 1024;

/// Dot product with [`SIMD_LANES`] independent accumulators.
///
/// The main loop walks both slices in chunks of eight, keeping eight
/// partial sums the compiler can hold in vector registers; the lanes are
/// then combined in a fixed tree (pairs at stride 4, then 2, then 1) and
/// the ragged tail is added sequentially. The operation order is a pure
/// function of the slice length — no data-dependent or thread-dependent
/// branching — so the result is deterministic everywhere it is used.
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot8(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot8: length mismatch");
    let mut lanes = [0.0f64; SIMD_LANES];
    let mut ca = a.chunks_exact(SIMD_LANES);
    let mut cb = b.chunks_exact(SIMD_LANES);
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..SIMD_LANES {
            lanes[l] += pa[l] * pb[l];
        }
    }
    // Fixed reduction tree: (0+4)+(2+6) then (1+5)+(3+7).
    let mut s = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

/// `out[j] -= m0*r0[j] + m1*r1[j] + m2*r2[j] + m3*r3[j]` — the fused
/// four-multiplier rank-1 chain at the heart of the blocked LU trailing
/// update and the tiled matmul. One pass over `out` applies
/// [`MULAD_UNROLL`] rank-1 updates; the four products are summed
/// left-to-right before the subtraction, a fixed order shared by every
/// caller.
#[inline]
pub fn fused_axpy4(out: &mut [f64], m: [f64; 4], r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64]) {
    let n = out.len();
    assert!(r0.len() >= n && r1.len() >= n && r2.len() >= n && r3.len() >= n);
    for j in 0..n {
        out[j] -= m[0] * r0[j] + m[1] * r1[j] + m[2] * r2[j] + m[3] * r3[j];
    }
}

/// `out[j] += m0*r0[j] + m1*r1[j] + m2*r2[j] + m3*r3[j]` — the additive
/// twin of [`fused_axpy4`], used by the tiled `DMat::matmul` where the
/// output accumulates rather than downdates. Same fixed left-to-right
/// summation of the four products.
#[inline]
pub fn fused_madd4(out: &mut [f64], m: [f64; 4], r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64]) {
    let n = out.len();
    assert!(r0.len() >= n && r1.len() >= n && r2.len() >= n && r3.len() >= n);
    for j in 0..n {
        out[j] += m[0] * r0[j] + m[1] * r1[j] + m[2] * r2[j] + m[3] * r3[j];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot8_matches_naive_to_ulp_scale() {
        for n in [0usize, 1, 7, 8, 9, 64, 100, 1023] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let fast = dot8(&a, &b);
            assert!(
                (fast - naive).abs() <= 1e-13 * (1.0 + naive.abs()),
                "n={n}: {fast} vs {naive}"
            );
        }
    }

    #[test]
    fn dot8_is_deterministic() {
        let a: Vec<f64> = (0..777).map(|i| (i as f64).cos()).collect();
        let b: Vec<f64> = (0..777).map(|i| (i as f64 * 0.1).tan()).collect();
        assert_eq!(dot8(&a, &b).to_bits(), dot8(&a, &b).to_bits());
    }

    #[test]
    #[should_panic(expected = "dot8: length mismatch")]
    fn dot8_length_mismatch_panics() {
        dot8(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn fused_axpy4_matches_four_sequential_axpys_to_ulp_scale() {
        let n = 37;
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                (0..n)
                    .map(|j| ((j * 3 + k * 7) % 13) as f64 * 0.21 - 1.0)
                    .collect()
            })
            .collect();
        let m = [0.3, -1.2, 0.7, 2.1];
        let mut fused: Vec<f64> = (0..n).map(|j| j as f64 * 0.5).collect();
        let mut seq = fused.clone();
        fused_axpy4(&mut fused, m, &rows[0], &rows[1], &rows[2], &rows[3]);
        for k in 0..4 {
            for j in 0..n {
                seq[j] -= m[k] * rows[k][j];
            }
        }
        for j in 0..n {
            assert!(
                (fused[j] - seq[j]).abs() <= 1e-14 * (1.0 + seq[j].abs()),
                "j={j}: {} vs {}",
                fused[j],
                seq[j]
            );
        }
    }
}
