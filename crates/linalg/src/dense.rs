//! Row-major dense matrices and BLAS-2/3 style kernels.

use crate::blocking::{dot8, fused_madd4, MULAD_UNROLL, PAR_BLOCKS};
use crate::error::{LinalgError, Result};
use crate::vector::DVec;
use meshfree_runtime::par;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Row-major dense `f64` matrix.
///
/// The RBF collocation matrices in this workspace are dense and moderately
/// sized (hundreds to a few thousand rows), so a flat row-major `Vec<f64>`
/// with cache-friendly loops and pool parallelism over rows is the right
/// tool. Above [`DMat::PAR_THRESHOLD`] total work, `matmul`/`matvec`
/// parallelize over rows.
#[derive(Debug, Clone, PartialEq)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// Work threshold (in multiply-adds) above which kernels go parallel.
    pub const PAR_THRESHOLD: usize = 1 << 16;

    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DMat { rows, cols, data }
    }

    /// Builds from row-major data. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: wrong data length");
        DMat { rows, cols, data }
    }

    /// Builds from a slice of rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        DMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Diagonal matrix from a vector.
    pub fn from_diag(d: &[f64]) -> Self {
        let n = d.len();
        let mut m = DMat::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow row `i` mutably.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` out into a vector.
    pub fn col(&self, j: usize) -> DVec {
        DVec::from_fn(self.rows, |i| self[(i, j)])
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat row-major data, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes `self`, returning the flat row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &DVec) -> Result<DVec> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                got: (x.len(), 1),
                expected: (self.cols, 1),
            });
        }
        let work = self.rows * self.cols;
        let y = if work >= Self::PAR_THRESHOLD {
            par::par_map_collect(self.rows, |i| dot8(self.row(i), x))
        } else {
            (0..self.rows).map(|i| dot8(self.row(i), x)).collect()
        };
        Ok(DVec(y))
    }

    /// Transposed matrix-vector product `Aᵀ x`.
    pub fn matvec_t(&self, x: &DVec) -> Result<DVec> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_t",
                got: (x.len(), 1),
                expected: (self.rows, 1),
            });
        }
        let mut y = DVec::zeros(self.cols);
        for i in 0..self.rows {
            let xi = x[i];
            if xi != 0.0 {
                for (j, &aij) in self.row(i).iter().enumerate() {
                    y[j] += aij * xi;
                }
            }
        }
        Ok(y)
    }

    /// Matrix product `A B`, parallel over rows of the output when large.
    pub fn matmul(&self, b: &DMat) -> Result<DMat> {
        if self.cols != b.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                got: (b.rows, b.cols),
                expected: (self.cols, b.cols),
            });
        }
        let (m, k, n) = (self.rows, self.cols, b.cols);
        let mut out = vec![0.0; m * n];
        let body = |i: usize, orow: &mut [f64]| {
            // i-k-j loop order: streams through B's rows, vectorizes the
            // inner j loop, and touches each output row once. Four of A's
            // multipliers are fused per pass over the output row
            // (MULAD_UNROLL), quartering output traffic and handing the
            // compiler independent mul-add chains; the summation order is
            // a pure function of k, so results are deterministic.
            let arow = &self.data[i * k..(i + 1) * k];
            let mut p = 0;
            while p + MULAD_UNROLL <= k {
                let mul = [arow[p], arow[p + 1], arow[p + 2], arow[p + 3]];
                let r0 = &b.data[p * n..(p + 1) * n];
                let r1 = &b.data[(p + 1) * n..(p + 2) * n];
                let r2 = &b.data[(p + 2) * n..(p + 3) * n];
                let r3 = &b.data[(p + 3) * n..(p + 4) * n];
                fused_madd4(orow, mul, r0, r1, r2, r3);
                p += MULAD_UNROLL;
            }
            while p < k {
                let a = arow[p];
                if a != 0.0 {
                    let brow = &b.data[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += a * bv;
                    }
                }
                p += 1;
            }
        };
        if m * k * n >= Self::PAR_THRESHOLD {
            // Fixed row-block decomposition (at most PAR_BLOCKS blocks),
            // independent of the pool width.
            let rows_per = m.div_ceil(PAR_BLOCKS).max(1);
            par::par_chunks_mut(&mut out, rows_per * n, |c, piece| {
                for (r, orow) in piece.chunks_mut(n).enumerate() {
                    body(c * rows_per + r, orow);
                }
            });
        } else {
            out.chunks_mut(n)
                .enumerate()
                .for_each(|(i, orow)| body(i, orow));
        }
        Ok(DMat {
            rows: m,
            cols: n,
            data: out,
        })
    }

    /// Transpose.
    pub fn transpose(&self) -> DMat {
        DMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DMat {
        DMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Scales every row `i` by `s[i]` (i.e. computes `diag(s) * A`).
    pub fn scale_rows(&self, s: &[f64]) -> DMat {
        assert_eq!(s.len(), self.rows, "scale_rows: wrong scale length");
        let mut out = self.clone();
        for (i, &si) in s.iter().enumerate() {
            for v in out.row_mut(i) {
                *v *= si;
            }
        }
        out
    }

    /// `self += alpha * other`, elementwise. Panics on shape mismatch.
    pub fn axpy_mat(&mut self, alpha: f64, other: &DMat) {
        assert_eq!(self.shape(), other.shape(), "axpy_mat: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute row sum (the induced infinity norm).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Maximum absolute column sum (the induced 1-norm).
    pub fn norm_1(&self) -> f64 {
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (j, &v) in self.row(i).iter().enumerate() {
                sums[j] += v.abs();
            }
        }
        sums.into_iter().fold(0.0, f64::max)
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Writes `block` into `self` with its top-left corner at `(r0, c0)`.
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &DMat) {
        assert!(r0 + block.rows <= self.rows && c0 + block.cols <= self.cols);
        for i in 0..block.rows {
            let dst = &mut self.row_mut(r0 + i)[c0..c0 + block.cols];
            dst.copy_from_slice(block.row(i));
        }
    }

    /// Extracts the `nr x nc` block with top-left corner at `(r0, c0)`.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> DMat {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols);
        DMat::from_fn(nr, nc, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Outer product `x yᵀ`.
    pub fn outer(x: &DVec, y: &DVec) -> DMat {
        DMat::from_fn(x.len(), y.len(), |i, j| x[i] * y[j])
    }
}

impl Index<(usize, usize)> for DMat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&DMat> for &DMat {
    type Output = DMat;
    fn add(self, rhs: &DMat) -> DMat {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let mut out = self.clone();
        out.axpy_mat(1.0, rhs);
        out
    }
}

impl Sub<&DMat> for &DMat {
    type Output = DMat;
    fn sub(self, rhs: &DMat) -> DMat {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let mut out = self.clone();
        out.axpy_mat(-1.0, rhs);
        out
    }
}

impl Mul<f64> for &DMat {
    type Output = DMat;
    fn mul(self, rhs: f64) -> DMat {
        self.map(|x| x * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn construction_and_indexing() {
        let m = DMat::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m.col(1).as_slice(), &[1.0, 4.0]);
        let id = DMat::eye(3);
        assert_eq!(id[(0, 0)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
        let d = DMat::from_diag(&[2.0, 3.0]);
        assert_eq!(d[(1, 1)], 3.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn matvec_known_result() {
        let a = DMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let y = a.matvec(&DVec(vec![1.0, 1.0])).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 7.0]);
        let yt = a.matvec_t(&DVec(vec![1.0, 1.0])).unwrap();
        assert_eq!(yt.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn matvec_shape_error() {
        let a = DMat::zeros(2, 3);
        assert!(a.matvec(&DVec::zeros(2)).is_err());
        assert!(a.matvec_t(&DVec::zeros(3)).is_err());
        assert!(a.matmul(&DMat::zeros(2, 2)).is_err());
    }

    #[test]
    fn matmul_known_result() {
        let a = DMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DMat::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = DMat::from_fn(4, 4, |i, j| (i + 2 * j) as f64);
        let c = a.matmul(&DMat::eye(4)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn large_matmul_matches_small_path() {
        // Force the parallel path and compare against the naive triple loop.
        let n = 70; // 70^3 > PAR_THRESHOLD
        let a = DMat::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 11) as f64 - 5.0);
        let b = DMat::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 7) as f64 - 3.0);
        let c = a.matmul(&b).unwrap();
        for i in (0..n).step_by(17) {
            for j in (0..n).step_by(13) {
                let mut s = 0.0;
                for p in 0..n {
                    s += a[(i, p)] * b[(p, j)];
                }
                assert!(approx(c[(i, j)], s, 1e-12));
            }
        }
    }

    #[test]
    fn blocked_matmul_matches_naive_reference() {
        // Shapes straddling MULAD_UNROLL: ragged k (fused + scalar tail),
        // exact multiples, and a size crossing the parallel threshold.
        for (m, k, n) in [
            (1, 1, 1),
            (5, 7, 6),
            (33, 48, 50),
            (40, 41, 42),
            (70, 70, 70),
        ] {
            let a = DMat::from_fn(m, k, |i, j| ((i * 7 + j * 13) % 11) as f64 * 0.3 - 1.5);
            let b = DMat::from_fn(k, n, |i, j| ((i * 3 + j * 5) % 7) as f64 * 0.7 - 2.1);
            let c = a.matmul(&b).unwrap();
            for i in 0..m {
                for j in 0..n {
                    let mut s = 0.0;
                    for p in 0..k {
                        s += a[(i, p)] * b[(p, j)];
                    }
                    let rel = (c[(i, j)] - s).abs() / s.abs().max(1.0);
                    assert!(rel <= 1e-13, "({m},{k},{n}) at ({i},{j}): rel {rel}");
                }
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let a = DMat::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn norms() {
        let a = DMat::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert!(approx(a.norm_fro(), 5.0, 1e-15));
        assert!(approx(a.norm_inf(), 4.0, 1e-15));
        assert!(approx(a.norm_1(), 4.0, 1e-15));
    }

    #[test]
    fn blocks_and_outer() {
        let mut m = DMat::zeros(3, 3);
        m.set_block(1, 1, &DMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        assert_eq!(m[(1, 1)], 1.0);
        assert_eq!(m[(2, 2)], 4.0);
        let b = m.block(1, 1, 2, 2);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let o = DMat::outer(&DVec(vec![1.0, 2.0]), &DVec(vec![3.0, 4.0]));
        assert_eq!(o.as_slice(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn scale_rows_matches_diag_product() {
        let a = DMat::from_fn(3, 2, |i, j| (i + j) as f64 + 1.0);
        let s = [2.0, 0.5, -1.0];
        let scaled = a.scale_rows(&s);
        let viadiag = DMat::from_diag(&s).matmul(&a).unwrap();
        assert_eq!(scaled, viadiag);
    }

    #[test]
    fn add_sub_scalar_mul() {
        let a = DMat::eye(2);
        let b = DMat::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!((&a + &b).as_slice(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!((&a - &b).as_slice(), &[1.0, -1.0, -1.0, 1.0]);
        assert_eq!((&a * 2.0)[(0, 0)], 2.0);
    }

    #[test]
    fn parallel_matmul_is_deterministic_across_thread_counts() {
        // Pool parallelism here is pure row partitioning: results must be
        // bit-identical regardless of the pool size. serial_scope forces
        // the shared pool through its inline path — no per-call pool
        // construction (the old per-test rayon ThreadPoolBuilder).
        let n = 90; // above PAR_THRESHOLD
        let a = DMat::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 23) as f64 * 0.37 - 3.0);
        let b = DMat::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 19) as f64 * 0.21 - 1.5);
        let par = a.matmul(&b).unwrap();
        let seq = par::serial_scope(|| a.matmul(&b).unwrap());
        assert_eq!(par, seq, "thread count changed the result bits");
    }

    /// Property tests need the proptest engine; enable with
    /// `--features proptest`.
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_matvec_linearity(seed in 0u64..1000) {
                let n = 5 + (seed % 7) as usize;
                let a = DMat::from_fn(n, n, |i, j| ((seed as usize + i * 31 + j * 17) % 13) as f64 - 6.0);
                let x = DVec::from_fn(n, |i| (i as f64 - 2.0) * 0.5);
                let y = DVec::from_fn(n, |i| ((i * 3) % 5) as f64);
                let lhs = a.matvec(&(&x + &y)).unwrap();
                let rhs = &a.matvec(&x).unwrap() + &a.matvec(&y).unwrap();
                for i in 0..n {
                    prop_assert!((lhs[i] - rhs[i]).abs() < 1e-9);
                }
            }

            #[test]
            fn prop_transpose_matvec_adjoint(seed in 0u64..1000) {
                // <Ax, y> == <x, A^T y>
                let m = 3 + (seed % 5) as usize;
                let n = 2 + (seed % 7) as usize;
                let a = DMat::from_fn(m, n, |i, j| ((seed as usize + i * 7 + j * 11) % 9) as f64 - 4.0);
                let x = DVec::from_fn(n, |i| i as f64 * 0.3 - 1.0);
                let y = DVec::from_fn(m, |i| 1.0 - i as f64 * 0.2);
                let lhs = a.matvec(&x).unwrap().dot(&y);
                let rhs = x.dot(&a.matvec_t(&y).unwrap());
                prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
            }

            #[test]
            fn prop_matmul_associative_with_vector(seed in 0u64..500) {
                // (AB)x == A(Bx)
                let n = 3 + (seed % 6) as usize;
                let a = DMat::from_fn(n, n, |i, j| ((seed as usize + i + 2 * j) % 7) as f64 - 3.0);
                let b = DMat::from_fn(n, n, |i, j| ((seed as usize + 3 * i + j) % 5) as f64 - 2.0);
                let x = DVec::from_fn(n, |i| (i as f64).sin());
                let lhs = a.matmul(&b).unwrap().matvec(&x).unwrap();
                let rhs = a.matvec(&b.matvec(&x).unwrap()).unwrap();
                for i in 0..n {
                    prop_assert!((lhs[i] - rhs[i]).abs() < 1e-9);
                }
            }
        }
    }
}
