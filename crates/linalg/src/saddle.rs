//! Block-CSR saddle-point systems and a SIMPLE-style Schur preconditioner.
//!
//! The Navier–Stokes Picard linearisation is a 3×3 block operator over the
//! stacked unknown vector `[u | v | p]` (block ordering is fixed —
//! velocity-x, velocity-y, pressure — and every index convention in this
//! module follows it):
//!
//! ```text
//!         ┌ A_uu   0     G_u ┐   block (0,0) convection–diffusion of u
//!   K  =  │ 0      A_vv  G_v │   block (1,1) convection–diffusion of v
//!         └ D_u    D_v   A_pp┘   row 2: continuity + pressure BC rows
//! ```
//!
//! [`BlockCsr`] stores each block as an independent [`Csr`] (absent blocks
//! are structural zeros) so the `3N×3N` system is held in `O(k·N)` memory —
//! the dense `(3N)²` matrix is never materialised. [`BlockCsr::flatten`]
//! emits the equivalent monolithic CSR for Krylov matvecs.
//!
//! Plain ILU(0) does not converge this system: the interior continuity rows
//! have **no pressure diagonal** (the operator is indefinite with a zero
//! (2,2) interior block), so the incomplete factorisation hits structural
//! zero pivots and degrades to Jacobi, which stalls. [`SaddlePrecond`]
//! instead applies a SIMPLE-style block lower-triangular sweep with a
//! diagonal Schur-complement approximation — see its docs for the exact
//! recipe.

use crate::iterative::Preconditioner;
use crate::sparse::{Csr, Triplets};
use crate::vector::DVec;

/// A square block matrix with `nb × nb` sparse blocks of uniform dimension
/// `n` (total operator dimension `nb·n`).
///
/// Blocks are stored row-major ([`BlockCsr::set_block`]`(bi, bj, ...)` is
/// the block in block-row `bi`, block-column `bj`); a `None` block is an
/// exact structural zero and costs nothing. For the Navier–Stokes saddle
/// system `nb = 3` with the `u | v | p` ordering documented at the module
/// level: global index `bi·n + i` is component `bi` at node `i`.
#[derive(Debug, Clone)]
pub struct BlockCsr {
    n: usize,
    nb: usize,
    blocks: Vec<Option<Csr>>,
}

impl BlockCsr {
    /// An all-zero block matrix of `nb × nb` blocks, each `n × n`.
    pub fn new(nb: usize, n: usize) -> BlockCsr {
        BlockCsr {
            n,
            nb,
            blocks: (0..nb * nb).map(|_| None).collect(),
        }
    }

    /// Number of blocks per side.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Dimension of each (square) block.
    pub fn block_dim(&self) -> usize {
        self.n
    }

    /// Total operator dimension `nb · n`.
    pub fn dim(&self) -> usize {
        self.nb * self.n
    }

    /// Installs block `(bi, bj)`; panics if the block is not `n × n`.
    pub fn set_block(&mut self, bi: usize, bj: usize, block: Csr) {
        assert!(bi < self.nb && bj < self.nb, "block index out of range");
        assert_eq!(
            (block.nrows(), block.ncols()),
            (self.n, self.n),
            "block ({bi},{bj}) has the wrong shape"
        );
        self.blocks[bi * self.nb + bj] = Some(block);
    }

    /// Block `(bi, bj)`, or `None` for a structural zero.
    pub fn block(&self, bi: usize, bj: usize) -> Option<&Csr> {
        self.blocks[bi * self.nb + bj].as_ref()
    }

    /// Total stored nonzeros across all blocks.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().flatten().map(|b| b.nnz()).sum()
    }

    /// Composes the blocks into one monolithic `nb·n × nb·n` CSR matrix
    /// (global row `bi·n + i`, global column `bj·n + j`).
    ///
    /// Row-by-row concatenation: block columns are visited in increasing
    /// `bj`, so the output inherits sorted column order from the blocks and
    /// the construction is deterministic (no thread-count dependence).
    pub fn flatten(&self) -> Csr {
        let dim = self.dim();
        let mut t = Triplets::new(dim, dim);
        for bi in 0..self.nb {
            for i in 0..self.n {
                for bj in 0..self.nb {
                    if let Some(b) = self.block(bi, bj) {
                        let (cols, vals) = b.row(i);
                        for (&j, &v) in cols.iter().zip(vals) {
                            t.push(bi * self.n + i, bj * self.n + j, v);
                        }
                    }
                }
            }
        }
        t.to_csr()
    }

    /// The block transpose: block `(bi, bj)` of the result is the CSR
    /// transpose of block `(bj, bi)`. `flatten()` of the result equals the
    /// transpose of `flatten()` of `self`.
    pub fn transpose(&self) -> BlockCsr {
        let mut out = BlockCsr::new(self.nb, self.n);
        for bi in 0..self.nb {
            for bj in 0..self.nb {
                if let Some(b) = self.block(bi, bj) {
                    out.set_block(bj, bi, b.transpose());
                }
            }
        }
        out
    }

    /// Bytes held by the stored blocks (values + index arrays).
    pub fn memory_bytes(&self) -> usize {
        self.blocks
            .iter()
            .flatten()
            .map(|b| {
                b.nnz() * (8 + std::mem::size_of::<usize>())
                    + (b.nrows() + 1) * std::mem::size_of::<usize>()
            })
            .sum()
    }
}

/// SIMPLE-style preconditioner for the 3×3 `u | v | p` saddle system.
///
/// Setup (from a [`BlockCsr`] with `nb = 3`):
///
/// 1. ILU(0) factorisations of the velocity diagonal blocks `A_uu`, `A_vv`
///    (these are convection–diffusion operators with healthy diagonals).
/// 2. A sparse Schur-complement approximation for the pressure block,
///    `Ŝ = A_pp − D_u·diag(A_uu)⁻¹·G_u − D_v·diag(A_vv)⁻¹·G_v`
///    (the SIMPLE recipe: the exact Schur complement with `A⁻¹` replaced by
///    its diagonal), then ILU(0) of `Ŝ`. The triple products are sparse
///    row-walks — `Ŝ` has `O(k²·N)` nonzeros, never dense. This is what
///    fills the structurally zero interior pressure diagonal that makes
///    plain ILU(0) on the flattened system fail.
///
/// Application is one block lower-triangular sweep per Krylov iteration:
///
/// ```text
/// z_u = M_uu⁻¹ r_u
/// z_v = M_vv⁻¹ r_v
/// z_p = M_S⁻¹ (r_p − D_u z_u − D_v z_v)
/// ```
///
/// For transpose solves, build a second `SaddlePrecond` from
/// [`BlockCsr::transpose`] — the transposed saddle system has the same
/// shape with the gradient/divergence roles exchanged, so the same
/// construction applies verbatim.
#[derive(Debug, Clone)]
pub struct SaddlePrecond {
    n: usize,
    m_u: Box<Preconditioner>,
    m_v: Box<Preconditioner>,
    m_s: Box<Preconditioner>,
    d_u: Option<Csr>,
    d_v: Option<Csr>,
}

/// Sparse `out ← out − d · diag_inv · g` (row-walk triple product appended
/// into triplets). `diag_inv[k]` is `1/diag(A)[k]` with vanishing diagonals
/// skipped.
fn subtract_scaled_product(t: &mut Triplets, d: &Csr, diag_inv: &[f64], g: &Csr) {
    for i in 0..d.nrows() {
        let (cols, vals) = d.row(i);
        for (&k, &dik) in cols.iter().zip(vals) {
            let scale = dik * diag_inv[k];
            if scale == 0.0 {
                continue;
            }
            let (gcols, gvals) = g.row(k);
            for (&j, &gkj) in gcols.iter().zip(gvals) {
                t.push(i, j, -scale * gkj);
            }
        }
    }
}

impl SaddlePrecond {
    /// Builds the preconditioner from a 3×3 saddle [`BlockCsr`] (panics on
    /// any other block count). Missing blocks are treated as zero.
    pub fn build(blocks: &BlockCsr) -> SaddlePrecond {
        assert_eq!(blocks.nb(), 3, "SaddlePrecond expects a 3x3 u|v|p system");
        let n = blocks.block_dim();
        let ilu_or_identity = |b: Option<&Csr>| match b {
            Some(m) => Preconditioner::ilu0_from(m),
            None => Preconditioner::Identity,
        };
        let m_u = ilu_or_identity(blocks.block(0, 0));
        let m_v = ilu_or_identity(blocks.block(1, 1));
        // Ŝ = A_pp − D_u diag(A_uu)⁻¹ G_u − D_v diag(A_vv)⁻¹ G_v.
        let inv_diag = |b: Option<&Csr>| -> Vec<f64> {
            match b {
                Some(m) => m
                    .diagonal()
                    .as_slice()
                    .iter()
                    .map(|&d| if d.abs() > 1e-300 { 1.0 / d } else { 0.0 })
                    .collect(),
                None => vec![0.0; n],
            }
        };
        let mut t = Triplets::new(n, n);
        if let Some(app) = blocks.block(2, 2) {
            for i in 0..n {
                let (cols, vals) = app.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    t.push(i, j, v);
                }
            }
        }
        if let (Some(d), Some(g)) = (blocks.block(2, 0), blocks.block(0, 2)) {
            subtract_scaled_product(&mut t, d, &inv_diag(blocks.block(0, 0)), g);
        }
        if let (Some(d), Some(g)) = (blocks.block(2, 1), blocks.block(1, 2)) {
            subtract_scaled_product(&mut t, d, &inv_diag(blocks.block(1, 1)), g);
        }
        let schur = t.to_csr();
        let m_s = Preconditioner::ilu0_from(&schur);
        SaddlePrecond {
            n,
            m_u: Box::new(m_u),
            m_v: Box::new(m_v),
            m_s: Box::new(m_s),
            d_u: blocks.block(2, 0).cloned(),
            d_v: blocks.block(2, 1).cloned(),
        }
    }

    /// Dimension of the full operator this preconditions (`3n`).
    pub fn dim(&self) -> usize {
        3 * self.n
    }

    /// Applies the block lower-triangular sweep: `out = M⁻¹ r` with `r` and
    /// `out` of length `3n` in the `u | v | p` stacking.
    ///
    /// Allocates three block-sized scratch vectors per call; the dominant
    /// cost is the three ILU(0) triangular solves and two divergence
    /// matvecs, so the allocations are noise at any realistic `n`.
    pub fn apply_into(&self, r: &DVec, out: &mut DVec) {
        let n = self.n;
        assert_eq!(r.len(), 3 * n, "saddle preconditioner: rhs length");
        let r_u = DVec(r.as_slice()[..n].to_vec());
        let r_v = DVec(r.as_slice()[n..2 * n].to_vec());
        let mut z = DVec::zeros(n);
        self.m_u.apply_into(&r_u, &mut z);
        out.as_mut_slice()[..n].copy_from_slice(z.as_slice());
        let mut t = DVec(r.as_slice()[2 * n..].to_vec());
        if let Some(d) = &self.d_u {
            let du_z = d.matvec(&z);
            t -= &du_z;
        }
        self.m_v.apply_into(&r_v, &mut z);
        out.as_mut_slice()[n..2 * n].copy_from_slice(z.as_slice());
        if let Some(d) = &self.d_v {
            let dv_z = d.matvec(&z);
            t -= &dv_z;
        }
        self.m_s.apply_into(&t, &mut z);
        out.as_mut_slice()[2 * n..].copy_from_slice(z.as_slice());
    }

    /// Bytes held by the block factorisations and divergence blocks.
    pub fn memory_bytes(&self) -> usize {
        let pre = |p: &Preconditioner| match p {
            Preconditioner::Identity => 0,
            Preconditioner::Jacobi(d) => d.len() * 8,
            Preconditioner::Ilu0(f) => f.memory_bytes(),
            Preconditioner::Saddle(s) => s.memory_bytes(),
        };
        let csr = |c: &Option<Csr>| {
            c.as_ref().map_or(0, |c| {
                c.nnz() * (8 + std::mem::size_of::<usize>())
                    + (c.nrows() + 1) * std::mem::size_of::<usize>()
            })
        };
        pre(&self.m_u) + pre(&self.m_v) + pre(&self.m_s) + csr(&self.d_u) + csr(&self.d_v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::{gmres, IterOpts};
    use crate::Lu;

    /// Tiny Stokes-like saddle system on a 1-D chain: A = tridiagonal
    /// diffusion for u and v, G = forward difference, D = Gᵀ-ish backward
    /// difference, zero interior pressure block with one pinned pressure row.
    fn chain_saddle(n: usize) -> BlockCsr {
        let tri = |shift: f64| {
            let mut t = Triplets::new(n, n);
            for i in 0..n {
                t.push(i, i, 2.0 + shift);
                if i > 0 {
                    t.push(i, i - 1, -1.0 - 0.1 * shift);
                }
                if i + 1 < n {
                    t.push(i, i + 1, -1.0);
                }
            }
            t.to_csr()
        };
        let diff = {
            let mut t = Triplets::new(n, n);
            for i in 0..n {
                if i + 1 < n {
                    t.push(i, i, -1.0);
                    t.push(i, i + 1, 1.0);
                }
            }
            t.to_csr()
        };
        let app = {
            let mut t = Triplets::new(n, n);
            // Pin the last pressure dof so the system is nonsingular.
            t.push(n - 1, n - 1, 1.0);
            t.to_csr()
        };
        let mut k = BlockCsr::new(3, n);
        k.set_block(0, 0, tri(0.3));
        k.set_block(1, 1, tri(0.7));
        k.set_block(0, 2, diff.clone());
        k.set_block(1, 2, diff.clone());
        k.set_block(2, 0, diff.clone());
        k.set_block(2, 1, diff);
        k.set_block(2, 2, app);
        k
    }

    #[test]
    fn flatten_matches_dense_block_placement() {
        let n = 6;
        let k = chain_saddle(n);
        let flat = k.flatten();
        assert_eq!(flat.nrows(), 3 * n);
        let dense = flat.to_dense();
        for bi in 0..3 {
            for bj in 0..3 {
                for i in 0..n {
                    for j in 0..n {
                        let expect = k.block(bi, bj).map_or(0.0, |b| b.to_dense()[(i, j)]);
                        assert_eq!(dense[(bi * n + i, bj * n + j)], expect);
                    }
                }
            }
        }
        assert_eq!(flat.nnz(), k.nnz());
    }

    #[test]
    fn block_transpose_flattens_to_the_flat_transpose() {
        let k = chain_saddle(5);
        let a = k.flatten().transpose().to_dense();
        let b = k.transpose().flatten().to_dense();
        assert_eq!(a, b);
    }

    #[test]
    fn schur_preconditioned_gmres_converges_where_ilu0_degrades() {
        let n = 24;
        let k = chain_saddle(n);
        let flat = k.flatten();
        let b = DVec::from_fn(3 * n, |i| ((i + 1) as f64 * 0.13).sin());
        // The interior pressure diagonal is structurally zero, so plain
        // ILU(0) on the flattened system cannot factor (falls back to
        // Jacobi). The saddle preconditioner must converge.
        assert!(crate::sparse::Ilu0::factor(&flat).is_err());
        let m = Preconditioner::Saddle(Box::new(SaddlePrecond::build(&k)));
        let opts = IterOpts::gmres().max_iter(4000).tol(1e-12).restart(80);
        let res = gmres(&flat, &b, &m, &opts).unwrap();
        let xd = Lu::factor(&flat.to_dense()).unwrap().solve(&b).unwrap();
        assert!((&res.x - &xd).norm2() < 1e-8 * xd.norm2().max(1.0));
        assert_eq!(m.kind_name(), "schur-ilu0");
    }

    #[test]
    fn transposed_preconditioner_solves_the_transposed_system() {
        let n = 18;
        let k = chain_saddle(n);
        let kt = k.transpose();
        let flat_t = kt.flatten();
        let b = DVec::from_fn(3 * n, |i| 1.0 - 0.01 * i as f64);
        let m = Preconditioner::Saddle(Box::new(SaddlePrecond::build(&kt)));
        let opts = IterOpts::gmres().max_iter(4000).tol(1e-12).restart(80);
        let res = gmres(&flat_t, &b, &m, &opts).unwrap();
        let r = &flat_t.matvec(&res.x) - &b;
        assert!(r.norm2() < 1e-8 * b.norm2());
    }

    #[test]
    fn memory_accounting_is_nonzero_and_blockwise() {
        let k = chain_saddle(10);
        assert!(k.memory_bytes() > 0);
        let p = SaddlePrecond::build(&k);
        assert!(p.memory_bytes() > 0);
        assert_eq!(p.dim(), 30);
    }
}
