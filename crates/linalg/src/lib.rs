#![warn(missing_docs)]

//! # meshfree-linalg
//!
//! Self-contained dense and sparse linear algebra for the `meshfree-oc`
//! workspace. No BLAS/LAPACK: the point of the reproduction is to own the
//! whole substrate, so everything from `axpy` to restarted GMRES lives here.
//!
//! Contents:
//!
//! * [`DVec`] — owned dense vector with the usual BLAS-1 operations.
//! * [`DMat`] — row-major dense matrix with pool-parallel BLAS-2/3 kernels.
//! * [`Lu`] — LU factorization with partial pivoting, forward/transpose
//!   solves, multi-RHS solves and a 1-norm condition estimate. This is the
//!   workhorse behind both the RBF collocation solves and the custom
//!   linear-solve adjoint in `meshfree-autodiff`.
//! * [`Cholesky`] — for symmetric positive definite systems.
//! * [`Qr`] — Householder QR and least-squares solves.
//! * [`Csr`] — compressed sparse row matrices with parallel SpMV, used by the
//!   RBF-FD local-stencil path.
//! * [`iterative`] — CG, BiCGSTAB and restarted GMRES with simple
//!   preconditioners, all reporting a uniform [`SolveReport`].
//! * [`backend`] — the [`LinearBackend`] abstraction unifying dense LU and
//!   [`SparseIterative`] (GMRES+ILU0) behind one solve/transpose-solve
//!   contract, selectable per run via [`BackendKind`].
//! * [`blocking`] — the unified blocking constants (LU tile, SIMD lane
//!   count, multi-RHS block, fixed parallel block count) and the
//!   chunks-of-8 dot kernel shared by every dense hot loop.
//!
//! All storage is `f64`; the solvers in this workspace are double precision
//! throughout (RBF collocation matrices are notoriously ill-conditioned and
//! single precision is not viable).

pub mod backend;
pub mod blocking;
pub mod dense;
pub mod error;
pub mod factor;
pub mod iterative;
pub mod saddle;
pub mod sparse;
pub mod vector;

pub use backend::{BackendKind, LinearBackend, SparseIterative};
pub use dense::DMat;
pub use error::{LinalgError, Result};
pub use factor::{Cholesky, Lu, Qr};
pub use iterative::{bicgstab, cg, gmres, IterOpts, Preconditioner, SolveReport};
pub use saddle::{BlockCsr, SaddlePrecond};
pub use sparse::{Csr, Ilu0, Triplets};
pub use vector::DVec;

/// Tolerance used by the crate's own tests when comparing against
/// analytically-known results.
pub const TEST_TOL: f64 = 1e-10;
