//! Pluggable linear-solver backends.
//!
//! The paper's DAL and DP strategies spend essentially all of their
//! wall-clock in repeated solves of the same collocation operator (forward
//! states and transposed/adjoint systems). [`LinearBackend`] abstracts that
//! contract so the PDE and control layers are generic over *how* the solve
//! happens:
//!
//! * [`crate::Lu`] — dense factor-once/solve-many with partial pivoting.
//!   The default: bitwise-identical to the historical direct path, optimal
//!   for the dense global-collocation operators (which have no sparsity to
//!   exploit).
//! * [`SparseIterative`] — CSR + restarted GMRES with an ILU(0)
//!   preconditioner (Jacobi fallback on singular pivots). The scale lever:
//!   an RBF-FD discretisation stores `O(k·N)` entries instead of `O(N²)`,
//!   so node counts far beyond the dense ceiling become tractable.
//!
//! Both sides satisfy the same four operations: `solve`, `solve_transpose`
//! (adjoints), `dim` and `memory_bytes`. Every sparse solve reports its
//! iteration count and final residual through the `"linsolve"` trace layer,
//! so a campaign sweep over `backend ∈ {DenseLu, SparseGmres}` records
//! solver effort alongside cost histories.

use crate::error::Result;
use crate::factor::Lu;
use crate::iterative::{gmres, IterOpts, Preconditioner};
use crate::saddle::{BlockCsr, SaddlePrecond};
use crate::sparse::Csr;
use crate::vector::DVec;
use meshfree_runtime::trace;

/// Which linear-solver backend a problem should use. This is the value that
/// flows through `RunSpec`/`ProblemSpec` builders — a campaign hyperparameter
/// like the learning rate or node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Dense LU with partial pivoting (factor once, solve many). The
    /// default; bitwise-identical to the historical direct path.
    #[default]
    DenseLu,
    /// Sparse CSR + restarted GMRES with ILU(0) preconditioning.
    SparseGmres,
}

impl BackendKind {
    /// Stable lowercase name, used in run identifiers and ledgers.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::DenseLu => "dense-lu",
            BackendKind::SparseGmres => "sparse-gmres",
        }
    }
}

/// A linear solver prepared for one operator: forward and transpose solves
/// against a fixed `A`, reusable across many right-hand sides.
///
/// Object-safe on purpose — the autodiff tape stores
/// `Arc<dyn LinearBackend>` inside its solve nodes so the backward pass can
/// replay `Aᵀx̄` through whichever backend produced the forward solve.
pub trait LinearBackend: Send + Sync {
    /// Operator dimension `n` (the backend solves `n × n` systems).
    fn dim(&self) -> usize;
    /// Which backend this is.
    fn kind(&self) -> BackendKind;
    /// Solves `A x = b`.
    fn solve(&self, b: &DVec) -> Result<DVec>;
    /// Solves `A xₖ = bₖ` for a batch of right-hand sides sharing the
    /// prepared operator.
    ///
    /// The default loops [`LinearBackend::solve`] once per column, so every
    /// backend gets the batched entry point; backends with a genuinely
    /// blocked path (dense LU) override it. Contract: the result must be
    /// bitwise identical to the one-at-a-time loop — callers (the serve
    /// batcher) rely on coalescing being invisible in the answers.
    fn solve_many(&self, rhs: &[DVec]) -> Result<Vec<DVec>> {
        rhs.iter().map(|b| self.solve(b)).collect()
    }
    /// Solves `Aᵀ x = b` (the adjoint/backward solve).
    fn solve_transpose(&self, b: &DVec) -> Result<DVec>;
    /// Bytes held by the prepared operator (factors, sparse pattern,
    /// preconditioner) — what the DP tape charges per retained solve node.
    fn memory_bytes(&self) -> usize;
}

impl LinearBackend for Lu {
    fn dim(&self) -> usize {
        Lu::dim(self)
    }
    fn kind(&self) -> BackendKind {
        BackendKind::DenseLu
    }
    fn solve(&self, b: &DVec) -> Result<DVec> {
        Lu::solve(self, b)
    }
    fn solve_many(&self, rhs: &[DVec]) -> Result<Vec<DVec>> {
        Lu::solve_many(self, rhs)
    }
    fn solve_transpose(&self, b: &DVec) -> Result<DVec> {
        Lu::solve_transpose(self, b)
    }
    fn memory_bytes(&self) -> usize {
        let n = Lu::dim(self);
        n * n * 8 + n * std::mem::size_of::<usize>()
    }
}

/// The sparse backend: a CSR operator, its explicit transpose, and ILU(0)
/// preconditioners for both, solved by restarted GMRES.
///
/// "Factorisation" here is the ILU(0) setup; [`SparseIterative::refactor`]
/// recycles the struct for a new operator with the same shape (the Picard
/// analogue of [`Lu::refactor`]). Solves are allocation-free inside the
/// Krylov loop ([`Csr::matvec_into`] + preallocated buffers) and emit one
/// `"linsolve"` trace event each with the iteration count and final
/// relative residual.
#[derive(Debug, Clone)]
pub struct SparseIterative {
    a: Csr,
    at: Csr,
    m: Preconditioner,
    mt: Preconditioner,
    opts: IterOpts,
}

impl SparseIterative {
    /// Prepares GMRES+ILU(0) for `a` with the given options. Builds the
    /// explicit transpose and both preconditioners up front so forward and
    /// adjoint solves are symmetric in cost.
    pub fn gmres_ilu0(a: Csr, opts: IterOpts) -> Self {
        let at = a.transpose();
        let m = Preconditioner::ilu0_from(&a);
        let mt = Preconditioner::ilu0_from(&at);
        SparseIterative { a, at, m, mt, opts }
    }

    /// Re-prepares the backend for a new operator (same shape, typically
    /// the next Picard linearisation): transpose and preconditioners are
    /// rebuilt, the solver options are kept.
    pub fn refactor(&mut self, a: Csr) {
        self.at = a.transpose();
        self.m = Preconditioner::ilu0_from(&a);
        self.mt = Preconditioner::ilu0_from(&self.at);
        self.a = a;
    }

    /// Prepares GMRES with the SIMPLE-style Schur preconditioner
    /// ([`SaddlePrecond`]) for a 3×3 `u|v|p` saddle-point system.
    ///
    /// The Krylov operator is the flattened block matrix
    /// ([`BlockCsr::flatten`], still `O(k·N)` storage); the preconditioner
    /// works block-wise. The transpose side builds the same preconditioner
    /// from the block transpose, so adjoint solves converge identically.
    /// Solves emit `gmres_schur` / `gmres_schur_t` events on the
    /// `"linsolve"` trace layer.
    pub fn gmres_saddle(blocks: &BlockCsr, opts: IterOpts) -> Self {
        let a = blocks.flatten();
        let at = a.transpose();
        let m = Preconditioner::Saddle(Box::new(SaddlePrecond::build(blocks)));
        let mt = Preconditioner::Saddle(Box::new(SaddlePrecond::build(&blocks.transpose())));
        SparseIterative { a, at, m, mt, opts }
    }

    /// [`SparseIterative::refactor`] for the saddle path: rebuilds the
    /// flattened operator, its transpose and both Schur preconditioners for
    /// the next Picard linearisation, keeping the solver options.
    pub fn refactor_saddle(&mut self, blocks: &BlockCsr) {
        self.a = blocks.flatten();
        self.at = self.a.transpose();
        self.m = Preconditioner::Saddle(Box::new(SaddlePrecond::build(blocks)));
        self.mt = Preconditioner::Saddle(Box::new(SaddlePrecond::build(&blocks.transpose())));
    }

    /// The prepared operator.
    pub fn matrix(&self) -> &Csr {
        &self.a
    }

    /// The solver options in effect.
    pub fn opts(&self) -> &IterOpts {
        &self.opts
    }

    fn run(&self, a: &Csr, m: &Preconditioner, b: &DVec, solver: &'static str) -> Result<DVec> {
        let report = gmres(a, b, m, &self.opts)?;
        trace::solve_event(
            "linsolve",
            solver,
            report.iterations,
            report.residual,
            f64::NAN,
            f64::NAN,
        );
        Ok(report.x)
    }
}

impl LinearBackend for SparseIterative {
    fn dim(&self) -> usize {
        self.a.nrows()
    }
    fn kind(&self) -> BackendKind {
        BackendKind::SparseGmres
    }
    fn solve(&self, b: &DVec) -> Result<DVec> {
        let label = match self.m {
            Preconditioner::Saddle(_) => "gmres_schur",
            _ => "gmres_ilu0",
        };
        self.run(&self.a, &self.m, b, label)
    }
    fn solve_transpose(&self, b: &DVec) -> Result<DVec> {
        let label = match self.mt {
            Preconditioner::Saddle(_) => "gmres_schur_t",
            _ => "gmres_ilu0_t",
        };
        self.run(&self.at, &self.mt, b, label)
    }
    fn memory_bytes(&self) -> usize {
        let csr = |c: &Csr| {
            c.nnz() * (8 + std::mem::size_of::<usize>())
                + (c.nrows() + 1) * std::mem::size_of::<usize>()
        };
        let pre = |p: &Preconditioner| match p {
            Preconditioner::Identity => 0,
            Preconditioner::Jacobi(d) => d.len() * 8,
            Preconditioner::Ilu0(f) => f.memory_bytes(),
            Preconditioner::Saddle(s) => s.memory_bytes(),
        };
        csr(&self.a) + csr(&self.at) + pre(&self.m) + pre(&self.mt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;
    use std::sync::Arc;

    fn advdiff_1d(n: usize, peclet: f64) -> Csr {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.1);
            if i > 0 {
                t.push(i, i - 1, -1.0 - peclet);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0 + peclet);
            }
        }
        t.to_csr()
    }

    fn dense_backend(a: &Csr) -> Lu {
        Lu::factor(&a.to_dense()).unwrap()
    }

    #[test]
    fn kinds_and_names_are_stable() {
        assert_eq!(BackendKind::default(), BackendKind::DenseLu);
        assert_eq!(BackendKind::DenseLu.name(), "dense-lu");
        assert_eq!(BackendKind::SparseGmres.name(), "sparse-gmres");
    }

    #[test]
    fn both_backends_solve_the_same_system() {
        let n = 60;
        let a = advdiff_1d(n, 0.3);
        let b = DVec::from_fn(n, |i| (i as f64 * 0.2).sin());
        let dense = dense_backend(&a);
        let sparse = SparseIterative::gmres_ilu0(a, IterOpts::gmres().tol(1e-12));
        let xd = LinearBackend::solve(&dense, &b).unwrap();
        let xs = sparse.solve(&b).unwrap();
        assert!((&xd - &xs).norm2() < 1e-8 * xd.norm2().max(1.0));
        assert_eq!(LinearBackend::dim(&dense), n);
        assert_eq!(sparse.dim(), n);
        assert_eq!(LinearBackend::kind(&dense), BackendKind::DenseLu);
        assert_eq!(sparse.kind(), BackendKind::SparseGmres);
    }

    #[test]
    fn transpose_solves_agree_across_backends() {
        let n = 40;
        let a = advdiff_1d(n, 0.5);
        let b = DVec::from_fn(n, |i| 1.0 - 0.03 * i as f64);
        let dense = dense_backend(&a);
        let sparse = SparseIterative::gmres_ilu0(a.clone(), IterOpts::gmres().tol(1e-12));
        let xd = LinearBackend::solve_transpose(&dense, &b).unwrap();
        let xs = sparse.solve_transpose(&b).unwrap();
        assert!((&xd - &xs).norm2() < 1e-8 * xd.norm2().max(1.0));
        // And it genuinely solves Aᵀx = b.
        let r = &a.matvec_t(&xs) - &b;
        assert!(r.norm2() < 1e-8 * b.norm2());
    }

    #[test]
    fn refactor_switches_operators() {
        let n = 30;
        let a1 = advdiff_1d(n, 0.2);
        let a2 = advdiff_1d(n, 0.6);
        let b = DVec::full(n, 1.0);
        let mut s = SparseIterative::gmres_ilu0(a1, IterOpts::gmres().tol(1e-12));
        let x1 = s.solve(&b).unwrap();
        s.refactor(a2.clone());
        let x2 = s.solve(&b).unwrap();
        assert!((&a2.matvec(&x2) - &b).norm2() < 1e-8);
        assert!((&x1 - &x2).norm2() > 1e-6, "operators must differ");
    }

    #[test]
    fn trait_objects_unify_both_backends() {
        let n = 25;
        let a = advdiff_1d(n, 0.4);
        let b = DVec::from_fn(n, |i| (i % 3) as f64 - 1.0);
        let backends: Vec<Arc<dyn LinearBackend>> = vec![
            Arc::new(dense_backend(&a)),
            Arc::new(SparseIterative::gmres_ilu0(
                a.clone(),
                IterOpts::gmres().tol(1e-12),
            )),
        ];
        let mut xs = Vec::new();
        for be in &backends {
            assert_eq!(be.dim(), n);
            assert!(be.memory_bytes() > 0);
            xs.push(be.solve(&b).unwrap());
        }
        assert!((&xs[0] - &xs[1]).norm2() < 1e-8 * xs[0].norm2().max(1.0));
    }

    #[test]
    fn sparse_backend_uses_far_less_memory_at_scale() {
        let n = 800;
        let a = advdiff_1d(n, 0.1);
        let sparse = SparseIterative::gmres_ilu0(a, IterOpts::gmres());
        // Dense would hold n² doubles; the tridiagonal CSR holds ~3n.
        assert!(sparse.memory_bytes() < n * n * 8 / 10);
    }

    #[test]
    fn sparse_solves_emit_linsolve_trace_events() {
        use meshfree_runtime::trace::{self, MemorySink, TraceEvent};
        let n = 50;
        let a = advdiff_1d(n, 0.3);
        let b = DVec::full(n, 1.0);
        let sparse = SparseIterative::gmres_ilu0(a, IterOpts::gmres());
        let (sink, events) = MemorySink::new();
        trace::set_sink(Box::new(sink));
        let _ = sparse.solve(&b).unwrap();
        let _ = sparse.solve_transpose(&b).unwrap();
        trace::clear_sink();
        let events = events.lock().unwrap();
        let solves: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Solve {
                    layer,
                    solver,
                    event,
                } if *layer == "linsolve" => Some((*solver, event.iter)),
                _ => None,
            })
            .collect();
        // Other concurrently-running tests may add linsolve events of their
        // own (the sink is process-global), so assert on presence, not count.
        assert!(
            solves.iter().any(|(s, it)| *s == "gmres_ilu0" && *it > 0),
            "forward solve must report its iteration count: {solves:?}"
        );
        assert!(
            solves.iter().any(|(s, _)| *s == "gmres_ilu0_t"),
            "transpose solve must be traced: {solves:?}"
        );
    }

    #[test]
    fn dense_fallback_when_ilu0_is_singular_still_solves() {
        // Permutation pattern: ILU(0) fails, backend falls back to Jacobi
        // internally and GMRES still converges.
        let mut t = Triplets::new(3, 3);
        t.push(0, 2, 1.0);
        t.push(1, 0, 1.0);
        t.push(2, 1, 1.0);
        let a = t.to_csr();
        let sparse = SparseIterative::gmres_ilu0(a, IterOpts::gmres());
        let b = DVec(vec![1.0, 2.0, 3.0]);
        let x = sparse.solve(&b).unwrap();
        assert!((x[2] - 1.0).abs() < 1e-9);
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }
}
