//! Iterative Krylov solvers: CG, BiCGSTAB and restarted GMRES.
//!
//! These back the sparse RBF-FD path. The dense global-collocation path uses
//! [`crate::Lu`] directly; the sparse path pairs these solvers with the
//! simple preconditioners below. GMRES is the default for the nonsymmetric
//! advection-dominated operators that appear in the Navier–Stokes momentum
//! equations.
//!
//! All three solvers are allocation-free in their inner loops: every
//! operator application goes through [`LinOp::apply_into`] /
//! [`Preconditioner::apply_into`] against buffers allocated once per solve
//! (GMRES additionally stores one basis vector per inner iteration, which is
//! inherent to the method). They return a uniform [`SolveReport`] on
//! success; non-convergence and breakdowns surface as
//! [`LinalgError::NotConverged`] / [`LinalgError::Breakdown`], which the
//! control layer maps onto its divergence taxonomy.

use crate::error::{LinalgError, Result};
use crate::sparse::Csr;
use crate::vector::DVec;
use meshfree_runtime::trace;

/// Anything that can act as `y = A x` for an iterative solver.
pub trait LinOp {
    /// Applies the operator.
    fn apply(&self, x: &DVec) -> DVec;
    /// Applies the operator into a caller-owned buffer of length
    /// [`LinOp::dim`]. Implementations should override this when they can
    /// avoid the allocation (the CSR implementation does); the default
    /// delegates to [`LinOp::apply`] and copies.
    fn apply_into(&self, x: &DVec, out: &mut DVec) {
        let y = self.apply(x);
        out.as_mut_slice().copy_from_slice(&y);
    }
    /// Problem dimension.
    fn dim(&self) -> usize;
}

impl LinOp for Csr {
    fn apply(&self, x: &DVec) -> DVec {
        self.matvec(x)
    }
    fn apply_into(&self, x: &DVec, out: &mut DVec) {
        self.matvec_into(x, out);
    }
    fn dim(&self) -> usize {
        self.nrows()
    }
}

impl LinOp for crate::dense::DMat {
    fn apply(&self, x: &DVec) -> DVec {
        self.matvec(x).expect("LinOp: shape mismatch")
    }
    fn dim(&self) -> usize {
        self.nrows()
    }
}

/// Left preconditioners `z = M⁻¹ r`.
#[derive(Debug, Clone)]
pub enum Preconditioner {
    /// No preconditioning.
    Identity,
    /// Diagonal (Jacobi) scaling; entries with zero diagonal pass through.
    Jacobi(DVec),
    /// Incomplete LU with zero fill-in, on the matrix's own sparsity.
    Ilu0(crate::sparse::Ilu0),
    /// Block lower-triangular sweep with a Schur-complement approximation
    /// for 3×3 `u|v|p` saddle-point systems ([`crate::saddle::SaddlePrecond`]).
    Saddle(Box<crate::saddle::SaddlePrecond>),
}

impl Preconditioner {
    /// Builds a Jacobi preconditioner from a sparse matrix's diagonal.
    pub fn jacobi_from(a: &Csr) -> Self {
        Preconditioner::Jacobi(a.diagonal())
    }

    /// Builds an ILU(0) preconditioner, falling back to Jacobi if the
    /// incomplete factorization hits a vanishing pivot. This is *the*
    /// construction path for ILU(0) in solver code — [`crate::Ilu0::factor`]
    /// is the raw factorization and reports the failing pivot instead of
    /// falling back.
    /// The fallback is *observable*: it emits an `ilu0_jacobi_fallback`
    /// counter and a `"linsolve"`-layer solve event, so campaign telemetry
    /// shows when a solve silently ran on the weaker preconditioner.
    pub fn ilu0_from(a: &Csr) -> Self {
        match crate::sparse::Ilu0::factor(a) {
            Ok(f) => Preconditioner::Ilu0(f),
            Err(_) => {
                trace::counter("ilu0_jacobi_fallback", 1.0);
                trace::solve_event(
                    "linsolve",
                    "ilu0_fallback_jacobi",
                    0,
                    f64::NAN,
                    f64::NAN,
                    f64::NAN,
                );
                Preconditioner::jacobi_from(a)
            }
        }
    }

    /// Short name of the preconditioner variant, for [`SolveReport`] and
    /// trace output.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Preconditioner::Identity => "identity",
            Preconditioner::Jacobi(_) => "jacobi",
            Preconditioner::Ilu0(_) => "ilu0",
            Preconditioner::Saddle(_) => "schur-ilu0",
        }
    }

    /// Applies the preconditioner.
    pub fn apply(&self, r: &DVec) -> DVec {
        let mut z = DVec::zeros(r.len());
        self.apply_into(r, &mut z);
        z
    }

    /// Applies the preconditioner into a caller-owned buffer (`out` must
    /// have the same length as `r`; the solvers preallocate it once).
    pub fn apply_into(&self, r: &DVec, out: &mut DVec) {
        match self {
            Preconditioner::Identity => out.as_mut_slice().copy_from_slice(r),
            Preconditioner::Jacobi(d) => {
                for i in 0..r.len() {
                    out[i] = if d[i].abs() > 1e-300 {
                        r[i] / d[i]
                    } else {
                        r[i]
                    };
                }
            }
            Preconditioner::Ilu0(f) => f.solve_into(r, out),
            Preconditioner::Saddle(s) => s.apply_into(r, out),
        }
    }
}

/// Options shared by the iterative solvers.
///
/// Construct through the builder: a solver-named constructor with the
/// documented defaults, then chained setters —
///
/// ```
/// use linalg::IterOpts;
/// let opts = IterOpts::gmres().tol(1e-10).restart(50);
/// let tight = IterOpts::cg().max_iter(10_000).tol(1e-12);
/// ```
///
/// Defaults (all constructors): `max_iter = 2000` (for GMRES: total inner
/// iterations), `rel_tol = 1e-10`, `restart = 50` (ignored by CG and
/// BiCGSTAB). Read back through [`IterOpts::iteration_limit`] /
/// [`IterOpts::tolerance`] / [`IterOpts::restart_len`].
#[derive(Debug, Clone)]
pub struct IterOpts {
    /// Maximum iterations (for GMRES: total inner iterations).
    max_iter: usize,
    /// Relative residual tolerance `‖r‖/‖b‖`.
    rel_tol: f64,
    /// GMRES restart length.
    restart: usize,
}

impl IterOpts {
    fn documented_defaults() -> Self {
        IterOpts {
            max_iter: 2000,
            rel_tol: 1e-10,
            restart: 50,
        }
    }

    /// Options for [`gmres`]: `max_iter = 2000` total inner iterations,
    /// `rel_tol = 1e-10`, `restart = 50`.
    pub fn gmres() -> Self {
        Self::documented_defaults()
    }

    /// Options for [`cg`]: `max_iter = 2000`, `rel_tol = 1e-10` (the
    /// restart length is ignored).
    pub fn cg() -> Self {
        Self::documented_defaults()
    }

    /// Options for [`bicgstab`]: `max_iter = 2000`, `rel_tol = 1e-10` (the
    /// restart length is ignored).
    pub fn bicgstab() -> Self {
        Self::documented_defaults()
    }

    /// Sets the iteration cap (for GMRES: total inner iterations).
    pub fn max_iter(mut self, n: usize) -> Self {
        self.max_iter = n;
        self
    }

    /// Sets the relative residual tolerance `‖r‖/‖b‖`.
    pub fn tol(mut self, t: f64) -> Self {
        self.rel_tol = t;
        self
    }

    /// Sets the GMRES restart length (ignored by CG and BiCGSTAB).
    pub fn restart(mut self, m: usize) -> Self {
        self.restart = m;
        self
    }

    /// Iteration cap.
    pub fn iteration_limit(&self) -> usize {
        self.max_iter
    }

    /// Relative residual tolerance.
    pub fn tolerance(&self) -> f64 {
        self.rel_tol
    }

    /// GMRES restart length.
    pub fn restart_len(&self) -> usize {
        self.restart
    }
}

impl Default for IterOpts {
    fn default() -> Self {
        Self::gmres()
    }
}

/// Uniform outcome of a successful iterative solve.
///
/// Failures (tolerance not reached, numerical breakdown) are *not* encoded
/// here — they surface as [`LinalgError::NotConverged`] /
/// [`LinalgError::Breakdown`] so the control layer's divergence taxonomy
/// (`ControlError::is_divergence`) applies uniformly. The `breakdown` field
/// records a *benign* early termination such as GMRES finding the exact
/// solution inside the Krylov space.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Solution vector.
    pub x: DVec,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
    /// Solver name (`"cg"`, `"bicgstab"`, `"gmres"`).
    pub solver: &'static str,
    /// Preconditioner kind (`"identity"`, `"jacobi"`, `"ilu0"`,
    /// `"schur-ilu0"`).
    pub precond: &'static str,
    /// Benign early-termination reason, if any (e.g. a lucky GMRES
    /// breakdown). `None` for a plain tolerance-reached exit.
    pub breakdown: Option<&'static str>,
}

/// Conjugate gradients for symmetric positive definite operators.
pub fn cg(a: &dyn LinOp, b: &DVec, m: &Preconditioner, opts: &IterOpts) -> Result<SolveReport> {
    let _span = trace::span("cg_solve");
    let n = a.dim();
    assert_eq!(b.len(), n, "cg: rhs length mismatch");
    let (max_iter, rel_tol) = (opts.iteration_limit(), opts.tolerance());
    let bnorm = b.norm2().max(1e-300);
    let mut x = DVec::zeros(n);
    let mut r = b.clone();
    let mut z = DVec::zeros(n);
    m.apply_into(&r, &mut z);
    let mut p = z.clone();
    let mut ap = DVec::zeros(n);
    let mut rz = r.dot(&z);
    for it in 0..max_iter {
        let rel = r.par_norm2() / bnorm;
        trace::solve_event("linear", "cg", it, rel, f64::NAN, f64::NAN);
        if rel <= rel_tol {
            return Ok(SolveReport {
                x,
                iterations: it,
                residual: rel,
                solver: "cg",
                precond: m.kind_name(),
                breakdown: None,
            });
        }
        a.apply_into(&p, &mut ap);
        let pap = p.dot(&ap);
        if pap.abs() < 1e-300 {
            return Err(LinalgError::Breakdown {
                solver: "cg",
                detail: "p'Ap ~ 0 (operator not SPD?)",
            });
        }
        let alpha = rz / pap;
        x.axpy(alpha, &p);
        r.axpy(-alpha, &ap);
        m.apply_into(&r, &mut z);
        let rz_new = r.dot(&z);
        let beta = rz_new / rz;
        rz = rz_new;
        // p = z + beta p, in place.
        p.scale_mut(beta);
        p += &z;
    }
    let rel = r.par_norm2() / bnorm;
    if rel <= rel_tol {
        Ok(SolveReport {
            x,
            iterations: max_iter,
            residual: rel,
            solver: "cg",
            precond: m.kind_name(),
            breakdown: None,
        })
    } else {
        Err(LinalgError::NotConverged {
            solver: "cg",
            iterations: max_iter,
            residual: rel,
        })
    }
}

/// BiCGSTAB for general nonsymmetric operators.
pub fn bicgstab(
    a: &dyn LinOp,
    b: &DVec,
    m: &Preconditioner,
    opts: &IterOpts,
) -> Result<SolveReport> {
    let _span = trace::span("bicgstab_solve");
    let n = a.dim();
    assert_eq!(b.len(), n, "bicgstab: rhs length mismatch");
    let (max_iter, rel_tol) = (opts.iteration_limit(), opts.tolerance());
    let bnorm = b.norm2().max(1e-300);
    let mut x = DVec::zeros(n);
    let mut r = b.clone();
    let r0 = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = DVec::zeros(n);
    let mut p = DVec::zeros(n);
    let mut phat = DVec::zeros(n);
    let mut shat = DVec::zeros(n);
    let mut t = DVec::zeros(n);
    let report = |x: DVec, iterations: usize, residual: f64| SolveReport {
        x,
        iterations,
        residual,
        solver: "bicgstab",
        precond: m.kind_name(),
        breakdown: None,
    };
    for it in 0..max_iter {
        let rel = r.par_norm2() / bnorm;
        trace::solve_event("linear", "bicgstab", it, rel, f64::NAN, f64::NAN);
        if rel <= rel_tol {
            return Ok(report(x, it, rel));
        }
        let rho_new = r0.dot(&r);
        if rho_new.abs() < 1e-300 {
            return Err(LinalgError::Breakdown {
                solver: "bicgstab",
                detail: "rho ~ 0",
            });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p - omega v), in place.
        p.axpy(-omega, &v);
        p.scale_mut(beta);
        p += &r;
        m.apply_into(&p, &mut phat);
        a.apply_into(&phat, &mut v);
        let r0v = r0.dot(&v);
        if r0v.abs() < 1e-300 {
            return Err(LinalgError::Breakdown {
                solver: "bicgstab",
                detail: "r0'v ~ 0",
            });
        }
        alpha = rho / r0v;
        // s = r - alpha v, overwriting r (r is rebuilt from s below).
        r.axpy(-alpha, &v);
        if r.norm2() / bnorm <= rel_tol {
            x.axpy(alpha, &phat);
            let rel = r.par_norm2() / bnorm;
            return Ok(report(x, it + 1, rel));
        }
        m.apply_into(&r, &mut shat);
        a.apply_into(&shat, &mut t);
        let tt = t.dot(&t);
        if tt.abs() < 1e-300 {
            return Err(LinalgError::Breakdown {
                solver: "bicgstab",
                detail: "t't ~ 0",
            });
        }
        omega = t.dot(&r) / tt;
        x.axpy(alpha, &phat);
        x.axpy(omega, &shat);
        r.axpy(-omega, &t);
    }
    let rel = r.par_norm2() / bnorm;
    Err(LinalgError::NotConverged {
        solver: "bicgstab",
        iterations: max_iter,
        residual: rel,
    })
}

/// Restarted GMRES(m) with Givens rotations, left-preconditioned.
///
/// The Arnoldi inner loop is pool-parallel end to end: the operator
/// application goes through the CSR SpMV's fixed row blocks, and every
/// orthogonalization reduction (the `h[i][j] = ⟨w, vᵢ⟩` dots and the
/// basis/residual norms) runs through [`DVec::par_dot`] /
/// [`DVec::par_norm2`], whose fixed-block summation keeps the iteration —
/// and therefore the returned solution — bitwise invariant to the pool
/// width.
pub fn gmres(a: &dyn LinOp, b: &DVec, m: &Preconditioner, opts: &IterOpts) -> Result<SolveReport> {
    let _span = trace::span("gmres_solve");
    let n = a.dim();
    assert_eq!(b.len(), n, "gmres: rhs length mismatch");
    let (max_iter, rel_tol) = (opts.iteration_limit(), opts.tolerance());
    let restart = opts.restart_len().min(n).max(1);
    let mut x = DVec::zeros(n);
    let mut total_iters = 0usize;
    let mut breakdown: Option<&'static str> = None;
    // Buffers recycled across all restarts and inner iterations.
    let mut scratch = DVec::zeros(n); // holds A x, then b - A x
    let mut r = DVec::zeros(n); // preconditioned residual
    let mut aw = DVec::zeros(n); // A v_j
    m.apply_into(b, &mut r);
    let bnorm = r.par_norm2().max(1e-300);
    let report = |x: DVec, iterations: usize, residual: f64, breakdown| SolveReport {
        x,
        iterations,
        residual,
        solver: "gmres",
        precond: m.kind_name(),
        breakdown,
    };

    while total_iters < max_iter {
        // r = M^{-1}(b - A x)
        a.apply_into(&x, &mut scratch);
        scratch.scale_mut(-1.0);
        scratch += b;
        m.apply_into(&scratch, &mut r);
        let beta = r.par_norm2();
        let rel0 = beta / bnorm;
        if rel0 <= rel_tol {
            return Ok(report(x, total_iters, rel0, breakdown));
        }
        // Arnoldi with modified Gram-Schmidt.
        let mut v: Vec<DVec> = vec![r.scaled(1.0 / beta)];
        let mut h = vec![vec![0.0f64; restart]; restart + 1]; // h[i][j]
        let mut cs = vec![0.0f64; restart];
        let mut sn = vec![0.0f64; restart];
        let mut g = vec![0.0f64; restart + 1];
        g[0] = beta;
        let mut k_used = 0;
        for j in 0..restart {
            if total_iters >= max_iter {
                break;
            }
            total_iters += 1;
            a.apply_into(&v[j], &mut aw);
            let mut w = DVec::zeros(n);
            m.apply_into(&aw, &mut w);
            for (i, vi) in v.iter().enumerate() {
                h[i][j] = w.par_dot(vi);
                w.axpy(-h[i][j], vi);
            }
            h[j + 1][j] = w.par_norm2();
            // Apply the accumulated Givens rotations to column j.
            for i in 0..j {
                let tmp = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = tmp;
            }
            // New rotation to zero h[j+1][j].
            let (c, s) = givens(h[j][j], h[j + 1][j]);
            cs[j] = c;
            sn[j] = s;
            h[j][j] = c * h[j][j] + s * h[j + 1][j];
            h[j + 1][j] = 0.0;
            g[j + 1] = -s * g[j];
            g[j] *= c;
            k_used = j + 1;
            let rel = g[j + 1].abs() / bnorm;
            trace::solve_event("linear", "gmres", total_iters, rel, f64::NAN, f64::NAN);
            if rel <= rel_tol {
                break;
            }
            let norm = w.par_norm2();
            if norm < 1e-300 {
                // Lucky breakdown: exact solution in the Krylov space.
                breakdown = Some("lucky breakdown: Krylov space contains the solution");
                break;
            }
            w.scale_mut(1.0 / norm);
            v.push(w);
        }
        // Solve the small triangular system and update x.
        let mut y = vec![0.0f64; k_used];
        for i in (0..k_used).rev() {
            let mut s = g[i];
            for j in i + 1..k_used {
                s -= h[i][j] * y[j];
            }
            y[i] = s / h[i][i];
        }
        for (j, &yj) in y.iter().enumerate() {
            x.axpy(yj, &v[j]);
        }
        // Check the true residual after the restart block.
        a.apply_into(&x, &mut scratch);
        scratch.scale_mut(-1.0);
        scratch += b;
        m.apply_into(&scratch, &mut r);
        let rel = r.par_norm2() / bnorm;
        if rel <= rel_tol {
            return Ok(report(x, total_iters, rel, breakdown));
        }
    }
    a.apply_into(&x, &mut scratch);
    scratch.scale_mut(-1.0);
    scratch += b;
    m.apply_into(&scratch, &mut r);
    let rel = r.par_norm2() / bnorm;
    Err(LinalgError::NotConverged {
        solver: "gmres",
        iterations: total_iters,
        residual: rel,
    })
}

/// Returns `(c, s)` with `c·a + s·b = r` and `−s·a + c·b = 0`.
fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() > b.abs() {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c, c * t)
    } else {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DMat;
    use crate::sparse::Triplets;

    /// 1-D Poisson matrix (tridiagonal [-1, 2, -1]): SPD, well understood.
    fn poisson_1d(n: usize) -> Csr {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    /// Nonsymmetric advection-diffusion matrix.
    fn advdiff_1d(n: usize, peclet: f64) -> Csr {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0 + 0.1);
            if i > 0 {
                t.push(i, i - 1, -1.0 - peclet);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0 + peclet);
            }
        }
        t.to_csr()
    }

    #[test]
    fn cg_solves_poisson() {
        let n = 64;
        let a = poisson_1d(n);
        let b = DVec::from_fn(n, |i| ((i + 1) as f64 * 0.1).sin());
        let res = cg(&a, &b, &Preconditioner::Identity, &IterOpts::cg()).unwrap();
        let r = &a.matvec(&res.x) - &b;
        assert!(r.norm2() < 1e-8 * b.norm2());
        assert!(res.iterations <= n + 1);
    }

    #[test]
    fn cg_with_jacobi_preconditioner() {
        let n = 64;
        let a = poisson_1d(n);
        let b = DVec::full(n, 1.0);
        let m = Preconditioner::jacobi_from(&a);
        let res = cg(&a, &b, &m, &IterOpts::cg()).unwrap();
        assert!((&a.matvec(&res.x) - &b).norm2() < 1e-8);
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        let n = 80;
        let a = advdiff_1d(n, 0.4);
        let b = DVec::from_fn(n, |i| 1.0 / (1.0 + i as f64));
        let res = bicgstab(&a, &b, &Preconditioner::Identity, &IterOpts::bicgstab()).unwrap();
        assert!((&a.matvec(&res.x) - &b).norm2() < 1e-8 * b.norm2().max(1.0));
    }

    #[test]
    fn gmres_solves_nonsymmetric() {
        let n = 80;
        let a = advdiff_1d(n, 0.7);
        let b = DVec::from_fn(n, |i| (i as f64 * 0.05).cos());
        let res = gmres(&a, &b, &Preconditioner::Identity, &IterOpts::gmres()).unwrap();
        let rel = (&a.matvec(&res.x) - &b).norm2() / b.norm2();
        assert!(rel < 1e-8, "relative residual {rel}");
    }

    #[test]
    fn gmres_with_restart_and_jacobi() {
        let n = 120;
        let a = advdiff_1d(n, 0.3);
        let b = DVec::full(n, 1.0);
        let m = Preconditioner::jacobi_from(&a);
        let opts = IterOpts::gmres().restart(15);
        let res = gmres(&a, &b, &m, &opts).unwrap();
        assert!((&a.matvec(&res.x) - &b).norm2() / b.norm2() < 1e-8);
    }

    #[test]
    fn gmres_matches_dense_lu() {
        let n = 30;
        let a = advdiff_1d(n, 0.5);
        let ad = a.to_dense();
        let b = DVec::from_fn(n, |i| (i as f64) - 10.0);
        let xg = gmres(&a, &b, &Preconditioner::Identity, &IterOpts::gmres())
            .unwrap()
            .x;
        let xl = crate::Lu::factor(&ad).unwrap().solve(&b).unwrap();
        assert!((&xg - &xl).norm2() < 1e-7 * xl.norm2().max(1.0));
    }

    #[test]
    fn gmres_on_dense_linop() {
        let a = DMat::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let b = DVec(vec![1.0, 2.0]);
        let res = gmres(&a, &b, &Preconditioner::Identity, &IterOpts::gmres()).unwrap();
        assert!((&a.matvec(&res.x).unwrap() - &b).norm2() < 1e-10);
    }

    #[test]
    fn not_converged_is_reported() {
        let n = 60;
        let a = poisson_1d(n);
        let b = DVec::full(n, 1.0);
        let opts = IterOpts::gmres().max_iter(2).tol(1e-14).restart(2);
        assert!(matches!(
            cg(&a, &b, &Preconditioner::Identity, &opts),
            Err(LinalgError::NotConverged { .. })
        ));
        assert!(matches!(
            gmres(&a, &b, &Preconditioner::Identity, &opts),
            Err(LinalgError::NotConverged { .. })
        ));
        assert!(matches!(
            bicgstab(&a, &b, &Preconditioner::Identity, &opts),
            Err(LinalgError::NotConverged { .. })
        ));
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = poisson_1d(10);
        let b = DVec::zeros(10);
        let res = gmres(&a, &b, &Preconditioner::Identity, &IterOpts::gmres()).unwrap();
        assert_eq!(res.iterations, 0);
        assert!(res.x.norm2() < 1e-14);
    }

    #[test]
    fn builder_defaults_match_the_documented_values() {
        for opts in [IterOpts::gmres(), IterOpts::cg(), IterOpts::bicgstab()] {
            assert_eq!(opts.iteration_limit(), 2000);
            assert_eq!(opts.tolerance(), 1e-10);
            assert_eq!(opts.restart_len(), 50);
        }
        let o = IterOpts::gmres().max_iter(7).tol(1e-3).restart(4);
        assert_eq!(o.iteration_limit(), 7);
        assert_eq!(o.tolerance(), 1e-3);
        assert_eq!(o.restart_len(), 4);
    }

    #[test]
    fn solve_report_carries_solver_and_preconditioner_names() {
        let n = 40;
        let a = poisson_1d(n);
        let b = DVec::full(n, 1.0);
        let m = Preconditioner::jacobi_from(&a);
        let rep = gmres(&a, &b, &m, &IterOpts::gmres()).unwrap();
        assert_eq!(rep.solver, "gmres");
        assert_eq!(rep.precond, "jacobi");
        assert!(rep.breakdown.is_none());
        assert!(rep.iterations > 0);
        assert!(rep.residual <= 1e-10);
        let rep = cg(&a, &b, &Preconditioner::Identity, &IterOpts::cg()).unwrap();
        assert_eq!((rep.solver, rep.precond), ("cg", "identity"));
    }

    #[test]
    fn ilu0_fallback_to_jacobi_on_singular_pivot() {
        // Zero diagonal in the pattern: ILU(0) must fail, and the documented
        // construction path falls back to Jacobi rather than erroring.
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let a = t.to_csr();
        assert!(crate::sparse::Ilu0::factor(&a).is_err());
        let m = Preconditioner::ilu0_from(&a);
        assert!(matches!(m, Preconditioner::Jacobi(_)));
        assert_eq!(m.kind_name(), "jacobi");
        // GMRES still solves the (perfectly regular) permutation system.
        let b = DVec(vec![2.0, 3.0]);
        let res = gmres(&a, &b, &m, &IterOpts::gmres()).unwrap();
        assert!((res.x[0] - 3.0).abs() < 1e-10 && (res.x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn ilu0_fallback_is_surfaced_on_the_trace_layer() {
        use meshfree_runtime::trace::{self, MemorySink, TraceEvent};
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let a = t.to_csr();
        let (sink, events) = MemorySink::new();
        trace::set_sink(Box::new(sink));
        let m = Preconditioner::ilu0_from(&a);
        trace::clear_sink();
        assert!(matches!(m, Preconditioner::Jacobi(_)));
        let events = events.lock().unwrap();
        assert!(
            events.iter().any(|e| matches!(e,
                TraceEvent::Counter { name, value }
                    if *name == "ilu0_jacobi_fallback" && *value == 1.0)),
            "fallback must bump the counter: {events:?}"
        );
        assert!(
            events.iter().any(|e| matches!(e,
                TraceEvent::Solve { layer, solver, .. }
                    if *layer == "linsolve" && *solver == "ilu0_fallback_jacobi")),
            "fallback must emit a linsolve event: {events:?}"
        );
    }

    #[test]
    fn gmres_is_bitwise_invariant_to_pool_width() {
        use meshfree_runtime::par::{serial_scope, with_pool, ThreadPool};
        use std::sync::Arc;
        // Large enough that the par_dot/par_norm2 reductions span several
        // REDUCE_BLOCK blocks and the SpMV crosses its parallel threshold.
        let n = 3000;
        let a = advdiff_1d(n, 0.3);
        let b = DVec::from_fn(n, |i| (i as f64 * 0.01).sin() + 0.5);
        let m = Preconditioner::ilu0_from(&a);
        let opts = IterOpts::gmres().restart(30).tol(1e-9);
        let want = serial_scope(|| gmres(&a, &b, &m, &opts).unwrap());
        for threads in [1usize, 2, 8] {
            let pool = Arc::new(ThreadPool::new(threads));
            let got = with_pool(&pool, || gmres(&a, &b, &m, &opts).unwrap());
            assert_eq!(got.iterations, want.iterations, "pool {threads}");
            assert_eq!(
                got.residual.to_bits(),
                want.residual.to_bits(),
                "pool {threads} changed the residual bits"
            );
            for i in 0..n {
                assert_eq!(
                    got.x[i].to_bits(),
                    want.x[i].to_bits(),
                    "pool {threads} diverged at entry {i}"
                );
            }
        }
    }

    #[test]
    fn apply_into_matches_apply_for_all_preconditioners() {
        let a = poisson_1d(12);
        let r = DVec::from_fn(12, |i| (i as f64 * 0.7).sin());
        for m in [
            Preconditioner::Identity,
            Preconditioner::jacobi_from(&a),
            Preconditioner::ilu0_from(&a),
        ] {
            let z = m.apply(&r);
            let mut z2 = DVec::zeros(12);
            m.apply_into(&r, &mut z2);
            assert_eq!(z.as_slice(), z2.as_slice(), "{}", m.kind_name());
        }
    }
}
