//! Iterative Krylov solvers: CG, BiCGSTAB and restarted GMRES.
//!
//! These back the sparse RBF-FD path. The dense global-collocation path uses
//! [`crate::Lu`] directly; the sparse path pairs these solvers with the
//! simple preconditioners below. GMRES is the default for the nonsymmetric
//! advection-dominated operators that appear in the Navier–Stokes momentum
//! equations.

use crate::error::{LinalgError, Result};
use crate::sparse::Csr;
use crate::vector::DVec;
use meshfree_runtime::trace;

/// Anything that can act as `y = A x` for an iterative solver.
pub trait LinOp {
    /// Applies the operator.
    fn apply(&self, x: &DVec) -> DVec;
    /// Problem dimension.
    fn dim(&self) -> usize;
}

impl LinOp for Csr {
    fn apply(&self, x: &DVec) -> DVec {
        self.matvec(x)
    }
    fn dim(&self) -> usize {
        self.nrows()
    }
}

impl LinOp for crate::dense::DMat {
    fn apply(&self, x: &DVec) -> DVec {
        self.matvec(x).expect("LinOp: shape mismatch")
    }
    fn dim(&self) -> usize {
        self.nrows()
    }
}

/// Left preconditioners `z = M⁻¹ r`.
#[derive(Debug, Clone)]
pub enum Preconditioner {
    /// No preconditioning.
    Identity,
    /// Diagonal (Jacobi) scaling; entries with zero diagonal pass through.
    Jacobi(DVec),
    /// Incomplete LU with zero fill-in, on the matrix's own sparsity.
    Ilu0(crate::sparse::Ilu0),
}

impl Preconditioner {
    /// Builds a Jacobi preconditioner from a sparse matrix's diagonal.
    pub fn jacobi_from(a: &Csr) -> Self {
        Preconditioner::Jacobi(a.diagonal())
    }

    /// Builds an ILU(0) preconditioner (falls back to Jacobi if a pivot
    /// vanishes during the incomplete factorization).
    pub fn ilu0_from(a: &Csr) -> Self {
        match crate::sparse::Ilu0::factor(a) {
            Some(f) => Preconditioner::Ilu0(f),
            None => Preconditioner::jacobi_from(a),
        }
    }

    /// Applies the preconditioner.
    pub fn apply(&self, r: &DVec) -> DVec {
        match self {
            Preconditioner::Identity => r.clone(),
            Preconditioner::Jacobi(d) => DVec::from_fn(r.len(), |i| {
                if d[i].abs() > 1e-300 {
                    r[i] / d[i]
                } else {
                    r[i]
                }
            }),
            Preconditioner::Ilu0(f) => f.solve(r),
        }
    }
}

/// Options shared by the iterative solvers.
#[derive(Debug, Clone)]
pub struct IterOpts {
    /// Maximum iterations (for GMRES: total inner iterations).
    pub max_iter: usize,
    /// Relative residual tolerance `‖r‖/‖b‖`.
    pub rel_tol: f64,
    /// GMRES restart length.
    pub restart: usize,
}

impl Default for IterOpts {
    fn default() -> Self {
        IterOpts {
            max_iter: 2000,
            rel_tol: 1e-10,
            restart: 50,
        }
    }
}

/// Outcome of a converged iterative solve.
#[derive(Debug, Clone)]
pub struct IterResult {
    /// Solution vector.
    pub x: DVec,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Conjugate gradients for symmetric positive definite operators.
pub fn cg(a: &dyn LinOp, b: &DVec, m: &Preconditioner, opts: &IterOpts) -> Result<IterResult> {
    let _span = trace::span("cg_solve");
    let n = a.dim();
    assert_eq!(b.len(), n, "cg: rhs length mismatch");
    let bnorm = b.norm2().max(1e-300);
    let mut x = DVec::zeros(n);
    let mut r = b.clone();
    let mut z = m.apply(&r);
    let mut p = z.clone();
    let mut rz = r.dot(&z);
    for it in 0..opts.max_iter {
        let rel = r.norm2() / bnorm;
        trace::solve_event("linear", "cg", it, rel, f64::NAN, f64::NAN);
        if rel <= opts.rel_tol {
            return Ok(IterResult {
                x,
                iterations: it,
                residual: rel,
            });
        }
        let ap = a.apply(&p);
        let pap = p.dot(&ap);
        if pap.abs() < 1e-300 {
            return Err(LinalgError::Breakdown {
                solver: "cg",
                detail: "p'Ap ~ 0 (operator not SPD?)",
            });
        }
        let alpha = rz / pap;
        x.axpy(alpha, &p);
        r.axpy(-alpha, &ap);
        z = m.apply(&r);
        let rz_new = r.dot(&z);
        let beta = rz_new / rz;
        rz = rz_new;
        p = &z + &p.scaled(beta);
    }
    let rel = r.norm2() / bnorm;
    if rel <= opts.rel_tol {
        Ok(IterResult {
            x,
            iterations: opts.max_iter,
            residual: rel,
        })
    } else {
        Err(LinalgError::NotConverged {
            solver: "cg",
            iterations: opts.max_iter,
            residual: rel,
        })
    }
}

/// BiCGSTAB for general nonsymmetric operators.
pub fn bicgstab(
    a: &dyn LinOp,
    b: &DVec,
    m: &Preconditioner,
    opts: &IterOpts,
) -> Result<IterResult> {
    let _span = trace::span("bicgstab_solve");
    let n = a.dim();
    assert_eq!(b.len(), n, "bicgstab: rhs length mismatch");
    let bnorm = b.norm2().max(1e-300);
    let mut x = DVec::zeros(n);
    let mut r = b.clone();
    let r0 = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = DVec::zeros(n);
    let mut p = DVec::zeros(n);
    for it in 0..opts.max_iter {
        let rel = r.norm2() / bnorm;
        trace::solve_event("linear", "bicgstab", it, rel, f64::NAN, f64::NAN);
        if rel <= opts.rel_tol {
            return Ok(IterResult {
                x,
                iterations: it,
                residual: rel,
            });
        }
        let rho_new = r0.dot(&r);
        if rho_new.abs() < 1e-300 {
            return Err(LinalgError::Breakdown {
                solver: "bicgstab",
                detail: "rho ~ 0",
            });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p - omega v)
        let mut pm = p.clone();
        pm.axpy(-omega, &v);
        p = &r + &pm.scaled(beta);
        let phat = m.apply(&p);
        v = a.apply(&phat);
        let r0v = r0.dot(&v);
        if r0v.abs() < 1e-300 {
            return Err(LinalgError::Breakdown {
                solver: "bicgstab",
                detail: "r0'v ~ 0",
            });
        }
        alpha = rho / r0v;
        let mut s = r.clone();
        s.axpy(-alpha, &v);
        if s.norm2() / bnorm <= opts.rel_tol {
            x.axpy(alpha, &phat);
            return Ok(IterResult {
                x,
                iterations: it + 1,
                residual: s.norm2() / bnorm,
            });
        }
        let shat = m.apply(&s);
        let t = a.apply(&shat);
        let tt = t.dot(&t);
        if tt.abs() < 1e-300 {
            return Err(LinalgError::Breakdown {
                solver: "bicgstab",
                detail: "t't ~ 0",
            });
        }
        omega = t.dot(&s) / tt;
        x.axpy(alpha, &phat);
        x.axpy(omega, &shat);
        r = s;
        r.axpy(-omega, &t);
    }
    let rel = r.norm2() / bnorm;
    Err(LinalgError::NotConverged {
        solver: "bicgstab",
        iterations: opts.max_iter,
        residual: rel,
    })
}

/// Restarted GMRES(m) with Givens rotations, left-preconditioned.
pub fn gmres(a: &dyn LinOp, b: &DVec, m: &Preconditioner, opts: &IterOpts) -> Result<IterResult> {
    let _span = trace::span("gmres_solve");
    let n = a.dim();
    assert_eq!(b.len(), n, "gmres: rhs length mismatch");
    let bnorm = m.apply(b).norm2().max(1e-300);
    let restart = opts.restart.min(n).max(1);
    let mut x = DVec::zeros(n);
    let mut total_iters = 0usize;

    while total_iters < opts.max_iter {
        // r = M^{-1}(b - A x)
        let mut r = b.clone();
        r -= &a.apply(&x);
        let r = m.apply(&r);
        let beta = r.norm2();
        let rel0 = beta / bnorm;
        if rel0 <= opts.rel_tol {
            return Ok(IterResult {
                x,
                iterations: total_iters,
                residual: rel0,
            });
        }
        // Arnoldi with modified Gram-Schmidt.
        let mut v: Vec<DVec> = vec![r.scaled(1.0 / beta)];
        let mut h = vec![vec![0.0f64; restart]; restart + 1]; // h[i][j]
        let mut cs = vec![0.0f64; restart];
        let mut sn = vec![0.0f64; restart];
        let mut g = vec![0.0f64; restart + 1];
        g[0] = beta;
        let mut k_used = 0;
        for j in 0..restart {
            if total_iters >= opts.max_iter {
                break;
            }
            total_iters += 1;
            let mut w = m.apply(&a.apply(&v[j]));
            for (i, vi) in v.iter().enumerate() {
                h[i][j] = w.dot(vi);
                w.axpy(-h[i][j], vi);
            }
            h[j + 1][j] = w.norm2();
            // Apply the accumulated Givens rotations to column j.
            for i in 0..j {
                let tmp = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = tmp;
            }
            // New rotation to zero h[j+1][j].
            let (c, s) = givens(h[j][j], h[j + 1][j]);
            cs[j] = c;
            sn[j] = s;
            h[j][j] = c * h[j][j] + s * h[j + 1][j];
            h[j + 1][j] = 0.0;
            g[j + 1] = -s * g[j];
            g[j] *= c;
            k_used = j + 1;
            let rel = g[j + 1].abs() / bnorm;
            trace::solve_event("linear", "gmres", total_iters, rel, f64::NAN, f64::NAN);
            if rel <= opts.rel_tol {
                break;
            }
            let norm = w.norm2();
            if norm < 1e-300 {
                break; // lucky breakdown: exact solution in the Krylov space
            }
            v.push(w.scaled(1.0 / norm));
        }
        // Solve the small triangular system and update x.
        let mut y = vec![0.0f64; k_used];
        for i in (0..k_used).rev() {
            let mut s = g[i];
            for j in i + 1..k_used {
                s -= h[i][j] * y[j];
            }
            y[i] = s / h[i][i];
        }
        for (j, &yj) in y.iter().enumerate() {
            x.axpy(yj, &v[j]);
        }
        // Check the true residual after the restart block.
        let mut rr = b.clone();
        rr -= &a.apply(&x);
        let rel = m.apply(&rr).norm2() / bnorm;
        if rel <= opts.rel_tol {
            return Ok(IterResult {
                x,
                iterations: total_iters,
                residual: rel,
            });
        }
    }
    let mut rr = b.clone();
    rr -= &a.apply(&x);
    let rel = m.apply(&rr).norm2() / bnorm;
    Err(LinalgError::NotConverged {
        solver: "gmres",
        iterations: total_iters,
        residual: rel,
    })
}

/// Returns `(c, s)` with `c·a + s·b = r` and `−s·a + c·b = 0`.
fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() > b.abs() {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c, c * t)
    } else {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DMat;
    use crate::sparse::Triplets;

    /// 1-D Poisson matrix (tridiagonal [-1, 2, -1]): SPD, well understood.
    fn poisson_1d(n: usize) -> Csr {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    /// Nonsymmetric advection-diffusion matrix.
    fn advdiff_1d(n: usize, peclet: f64) -> Csr {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0 + 0.1);
            if i > 0 {
                t.push(i, i - 1, -1.0 - peclet);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0 + peclet);
            }
        }
        t.to_csr()
    }

    #[test]
    fn cg_solves_poisson() {
        let n = 64;
        let a = poisson_1d(n);
        let b = DVec::from_fn(n, |i| ((i + 1) as f64 * 0.1).sin());
        let res = cg(&a, &b, &Preconditioner::Identity, &IterOpts::default()).unwrap();
        let r = &a.matvec(&res.x) - &b;
        assert!(r.norm2() < 1e-8 * b.norm2());
        assert!(res.iterations <= n + 1);
    }

    #[test]
    fn cg_with_jacobi_preconditioner() {
        let n = 64;
        let a = poisson_1d(n);
        let b = DVec::full(n, 1.0);
        let m = Preconditioner::jacobi_from(&a);
        let res = cg(&a, &b, &m, &IterOpts::default()).unwrap();
        assert!((&a.matvec(&res.x) - &b).norm2() < 1e-8);
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        let n = 80;
        let a = advdiff_1d(n, 0.4);
        let b = DVec::from_fn(n, |i| 1.0 / (1.0 + i as f64));
        let res = bicgstab(&a, &b, &Preconditioner::Identity, &IterOpts::default()).unwrap();
        assert!((&a.matvec(&res.x) - &b).norm2() < 1e-8 * b.norm2().max(1.0));
    }

    #[test]
    fn gmres_solves_nonsymmetric() {
        let n = 80;
        let a = advdiff_1d(n, 0.7);
        let b = DVec::from_fn(n, |i| (i as f64 * 0.05).cos());
        let res = gmres(&a, &b, &Preconditioner::Identity, &IterOpts::default()).unwrap();
        let rel = (&a.matvec(&res.x) - &b).norm2() / b.norm2();
        assert!(rel < 1e-8, "relative residual {rel}");
    }

    #[test]
    fn gmres_with_restart_and_jacobi() {
        let n = 120;
        let a = advdiff_1d(n, 0.3);
        let b = DVec::full(n, 1.0);
        let m = Preconditioner::jacobi_from(&a);
        let opts = IterOpts {
            restart: 15,
            ..Default::default()
        };
        let res = gmres(&a, &b, &m, &opts).unwrap();
        assert!((&a.matvec(&res.x) - &b).norm2() / b.norm2() < 1e-8);
    }

    #[test]
    fn gmres_matches_dense_lu() {
        let n = 30;
        let a = advdiff_1d(n, 0.5);
        let ad = a.to_dense();
        let b = DVec::from_fn(n, |i| (i as f64) - 10.0);
        let xg = gmres(&a, &b, &Preconditioner::Identity, &IterOpts::default())
            .unwrap()
            .x;
        let xl = crate::Lu::factor(&ad).unwrap().solve(&b).unwrap();
        assert!((&xg - &xl).norm2() < 1e-7 * xl.norm2().max(1.0));
    }

    #[test]
    fn gmres_on_dense_linop() {
        let a = DMat::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let b = DVec(vec![1.0, 2.0]);
        let res = gmres(&a, &b, &Preconditioner::Identity, &IterOpts::default()).unwrap();
        assert!((&a.matvec(&res.x).unwrap() - &b).norm2() < 1e-10);
    }

    #[test]
    fn not_converged_is_reported() {
        let n = 60;
        let a = poisson_1d(n);
        let b = DVec::full(n, 1.0);
        let opts = IterOpts {
            max_iter: 2,
            rel_tol: 1e-14,
            restart: 2,
        };
        assert!(matches!(
            cg(&a, &b, &Preconditioner::Identity, &opts),
            Err(LinalgError::NotConverged { .. })
        ));
        assert!(matches!(
            gmres(&a, &b, &Preconditioner::Identity, &opts),
            Err(LinalgError::NotConverged { .. })
        ));
        assert!(matches!(
            bicgstab(&a, &b, &Preconditioner::Identity, &opts),
            Err(LinalgError::NotConverged { .. })
        ));
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = poisson_1d(10);
        let b = DVec::zeros(10);
        let res = gmres(&a, &b, &Preconditioner::Identity, &IterOpts::default()).unwrap();
        assert_eq!(res.iterations, 0);
        assert!(res.x.norm2() < 1e-14);
    }
}
