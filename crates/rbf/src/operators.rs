//! Global RBF collocation: operator rows, fit systems, differentiation
//! matrices and PDE-matrix assembly.
//!
//! A field is expanded as (paper eq. 2)
//! `û(x) = Σ_j λ_j φ(‖x − x_j‖) + Σ_j γ_j P_j(x)`,
//! so every linear functional `L` (point evaluation, `∂x`, `∂y`, `∇²`,
//! `n·∇`) becomes a *row* `[L φ_1(x) … L φ_N(x) | L P_1(x) … L P_M(x)]`
//! acting on the coefficient vector `[λ; γ]`. Assembly = stacking rows.
//!
//! The assembly leans on two workspace-wide conventions:
//!
//! * **Node ordering** ([`geometry::NodeSet`]): nodes are stored interior
//!   first, then boundary nodes grouped by kind (Dirichlet → Neumann →
//!   Robin). Row `i` of an assembled PDE matrix therefore *is* node `i`'s
//!   equation — interior rows carry the PDE operator, boundary rows the BC
//!   functional — with no index indirection anywhere downstream.
//! * **Row-major dense storage** ([`linalg::DMat`]): a collocation row is a
//!   contiguous slice, so row construction writes straight into the target
//!   matrix (see [`GlobalCollocation::assemble`]) and parallel assembly
//!   splits over disjoint row blocks with a thread-count-invariant chunk
//!   decomposition (bitwise-reproducible at any `MESHFREE_THREADS`).

use crate::kernel::RbfKernel;
use crate::poly::PolyBasis;
use geometry::{NodeKind, NodeSet, Point2};
use linalg::{DMat, DVec, LinalgError, Lu};
use meshfree_runtime::par;
use std::sync::Arc;

/// Linear differential operators supported as collocation rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiffOp {
    /// Point evaluation.
    Eval,
    /// `∂/∂x`.
    Dx,
    /// `∂/∂y`.
    Dy,
    /// 2-D Laplacian.
    Lap,
}

/// Nodal differentiation matrices: map field values *at nodes* to operator
/// values *at nodes* (`N × N` dense).
///
/// Built once per node set as `D_op = B_op · A_fit⁻¹ [I; 0]`; the
/// Navier–Stokes solver uses these as constant building blocks of its
/// (state-dependent) system matrices.
#[derive(Debug, Clone)]
pub struct DiffMatrices {
    /// `∂/∂x` at the nodes.
    pub dx: DMat,
    /// `∂/∂y` at the nodes.
    pub dy: DMat,
    /// `∇²` at the nodes.
    pub lap: DMat,
}

/// Global collocation context over a [`NodeSet`]: kernel + appended
/// polynomial basis + the (factored) interpolation system.
pub struct GlobalCollocation {
    nodes: NodeSet,
    kernel: RbfKernel,
    basis: PolyBasis,
    fit_lu: Arc<Lu>,
}

impl GlobalCollocation {
    /// Builds the context and factors the `(N+M)²` fit matrix
    /// `[Φ P; Pᵀ 0]` once.
    pub fn new(nodes: &NodeSet, kernel: RbfKernel, degree: i32) -> Result<Self, LinalgError> {
        let basis = PolyBasis::new(degree);
        let fit = fit_matrix(nodes, kernel, basis);
        let fit_lu = Arc::new(Lu::factor(&fit)?);
        Ok(GlobalCollocation {
            nodes: nodes.clone(),
            kernel,
            basis,
            fit_lu,
        })
    }

    /// Number of RBF centres `N`.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Number of appended monomials `M`.
    pub fn m(&self) -> usize {
        self.basis.len()
    }

    /// Total system size `N + M`.
    pub fn size(&self) -> usize {
        self.n() + self.m()
    }

    /// The node set this context was built over.
    pub fn nodes(&self) -> &NodeSet {
        &self.nodes
    }

    /// The kernel in use.
    pub fn kernel(&self) -> RbfKernel {
        self.kernel
    }

    /// The factored fit matrix (shared; cheap to clone the `Rc`).
    pub fn fit_lu(&self) -> &Arc<Lu> {
        &self.fit_lu
    }

    /// Collocation row of `op` evaluated at an arbitrary point `x`.
    pub fn row(&self, op: DiffOp, x: Point2) -> Vec<f64> {
        let mut row = Vec::new();
        self.row_into(op, x, &mut row);
        row
    }

    /// [`GlobalCollocation::row`] into a caller-owned buffer, cleared first.
    /// Batched evaluation loops reuse one buffer across points instead of
    /// allocating a length-`N+M` row per point.
    pub fn row_into(&self, op: DiffOp, x: Point2, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.size());
        match op {
            DiffOp::Eval => {
                for c in self.nodes.points() {
                    out.push(self.kernel.eval(x.dist(c)));
                }
                out.extend(self.basis.eval(x));
            }
            DiffOp::Dx => {
                for c in self.nodes.points() {
                    let r = x.dist(c);
                    out.push((x.x - c.x) * self.kernel.d1_over_r(r));
                }
                out.extend(self.basis.eval_dx(x));
            }
            DiffOp::Dy => {
                for c in self.nodes.points() {
                    let r = x.dist(c);
                    out.push((x.y - c.y) * self.kernel.d1_over_r(r));
                }
                out.extend(self.basis.eval_dy(x));
            }
            DiffOp::Lap => {
                for c in self.nodes.points() {
                    out.push(self.kernel.laplacian2d(x.dist(c)));
                }
                out.extend(self.basis.eval_lap(x));
            }
        }
    }

    /// Normal-derivative row `n·∇` at `x`.
    pub fn normal_row(&self, x: Point2, normal: Point2) -> Vec<f64> {
        let dx = self.row(DiffOp::Dx, x);
        let dy = self.row(DiffOp::Dy, x);
        dx.iter()
            .zip(&dy)
            .map(|(a, b)| normal.x * a + normal.y * b)
            .collect()
    }

    /// Operator matrix with one row per point in `points`
    /// (`points.len() × (N+M)`), built in parallel. Rows are written
    /// straight into the output storage with one row buffer per pool chunk
    /// (no intermediate `Vec<Vec<f64>>`).
    pub fn op_matrix(&self, op: DiffOp, points: &[Point2]) -> DMat {
        let size = self.size();
        let np = points.len();
        let mut out = DMat::zeros(np, size);
        if np == 0 {
            return out;
        }
        // Fixed row-block decomposition (at most PAR_BLOCKS blocks),
        // independent of the thread count.
        let block = np.div_ceil(linalg::blocking::PAR_BLOCKS).max(1);
        par::par_chunks_mut(out.as_mut_slice(), block * size, |c, piece| {
            let mut buf = Vec::with_capacity(size);
            let base = c * block;
            for (r, row) in piece.chunks_mut(size).enumerate() {
                self.row_into(op, points[base + r], &mut buf);
                row.copy_from_slice(&buf);
            }
        });
        out
    }

    /// Operator matrix evaluated at this context's own nodes
    /// (`N × (N+M)`).
    pub fn op_matrix_at_nodes(&self, op: DiffOp) -> DMat {
        self.op_matrix(op, self.nodes.points())
    }

    /// The `M × (N+M)` polynomial-constraint rows `[Pᵀ | 0]`.
    pub fn poly_constraint_rows(&self) -> DMat {
        let n = self.n();
        let m = self.m();
        let mut rows = DMat::zeros(m, n + m);
        for (i, p) in self.nodes.points().iter().enumerate() {
            for (j, v) in self.basis.eval(*p).into_iter().enumerate() {
                rows[(j, i)] = v;
            }
        }
        rows
    }

    /// Fits coefficients `[λ; γ]` to nodal values (length `N`), padding the
    /// constraint block with zeros.
    pub fn fit_values(&self, nodal: &DVec) -> Result<DVec, LinalgError> {
        assert_eq!(nodal.len(), self.n(), "fit_values: wrong length");
        let mut rhs = DVec::zeros(self.size());
        rhs.as_mut_slice()[..self.n()].copy_from_slice(nodal);
        self.fit_lu.solve(&rhs)
    }

    /// Evaluates `op` of the fitted field (coefficients) at `points`.
    pub fn eval_op(&self, op: DiffOp, coeffs: &DVec, points: &[Point2]) -> DVec {
        assert_eq!(
            coeffs.len(),
            self.size(),
            "eval_op: wrong coefficient length"
        );
        // One row buffer per pool chunk instead of one allocation per point.
        let vals: Vec<f64> = par::par_map_collect_with(points.len(), Vec::new, |buf, i| {
            self.row_into(op, points[i], buf);
            buf.iter().zip(coeffs.as_slice()).map(|(r, c)| r * c).sum()
        });
        DVec(vals)
    }

    /// Builds the nodal differentiation matrices `Dx`, `Dy`, `∇²`
    /// (`N × N` each): `D_op = B_op · A_fit⁻¹ [I; 0]`.
    pub fn diff_matrices(&self) -> Result<DiffMatrices, LinalgError> {
        let n = self.n();
        let size = self.size();
        // G = A_fit⁻¹ [I; 0]  (size × n)
        let mut rhs = DMat::zeros(size, n);
        for i in 0..n {
            rhs[(i, i)] = 1.0;
        }
        let g = self.fit_lu.solve_mat(&rhs)?;
        let dx = self.op_matrix_at_nodes(DiffOp::Dx).matmul(&g)?;
        let dy = self.op_matrix_at_nodes(DiffOp::Dy).matmul(&g)?;
        let lap = self.op_matrix_at_nodes(DiffOp::Lap).matmul(&g)?;
        Ok(DiffMatrices { dx, dy, lap })
    }

    /// Assembles a PDE collocation matrix `(N+M)²`: one row per node
    /// supplied by `row_for_node(i, point)` (typically built from
    /// [`GlobalCollocation::row`] / [`GlobalCollocation::normal_row`]),
    /// followed by the polynomial constraint rows.
    pub fn assemble(&self, row_for_node: impl Fn(usize, Point2) -> Vec<f64> + Sync) -> DMat {
        let size = self.size();
        let n = self.n();
        let mut full = DMat::zeros(size, size);
        if n > 0 {
            // Rows land straight in the output storage (no Vec<Vec> +
            // block-copy round trip); fixed row-block decomposition.
            let block = n.div_ceil(linalg::blocking::PAR_BLOCKS).max(1);
            par::par_chunks_mut(
                &mut full.as_mut_slice()[..n * size],
                block * size,
                |c, piece| {
                    let base = c * block;
                    for (r, row) in piece.chunks_mut(size).enumerate() {
                        let i = base + r;
                        let v = row_for_node(i, self.nodes.point(i));
                        assert_eq!(v.len(), size, "assemble: row {i} has wrong length");
                        row.copy_from_slice(&v);
                    }
                },
            );
        }
        let cons = self.poly_constraint_rows();
        full.set_block(n, 0, &cons);
        full
    }

    /// Convenience: the standard boundary-aware assembly where interior
    /// nodes get `interior_row(i, p)` and boundary nodes get the row implied
    /// by their [`NodeKind`] (Dirichlet → evaluation, Neumann → `n·∇`,
    /// Robin → `n·∇ + β·eval`).
    pub fn assemble_with_bcs(
        &self,
        interior_row: impl Fn(usize, Point2) -> Vec<f64> + Sync,
        robin_beta: f64,
    ) -> DMat {
        self.assemble(|i, p| match self.nodes.kind(i) {
            NodeKind::Interior => interior_row(i, p),
            NodeKind::Dirichlet => self.row(DiffOp::Eval, p),
            NodeKind::Neumann => self.normal_row(p, self.nodes.normal(i).unwrap()),
            NodeKind::Robin => {
                let mut row = self.normal_row(p, self.nodes.normal(i).unwrap());
                for (r, e) in row.iter_mut().zip(self.row(DiffOp::Eval, p)) {
                    *r += robin_beta * e;
                }
                row
            }
        })
    }
}

/// The `(N+M)²` interpolation (fit) matrix `[Φ P; Pᵀ 0]`.
pub fn fit_matrix(nodes: &NodeSet, kernel: RbfKernel, basis: PolyBasis) -> DMat {
    let n = nodes.len();
    let m = basis.len();
    let mut a = DMat::zeros(n + m, n + m);
    for i in 0..n {
        let pi = nodes.point(i);
        for j in 0..n {
            a[(i, j)] = kernel.eval(pi.dist(&nodes.point(j)));
        }
        for (j, v) in basis.eval(pi).into_iter().enumerate() {
            a[(i, n + j)] = v;
            a[(n + j, i)] = v;
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::generators::{unit_square_grid, unit_square_scattered, BoundaryClass};

    fn all_dirichlet(p: Point2) -> BoundaryClass {
        let normal = if p.y == 0.0 {
            Point2::new(0.0, -1.0)
        } else if p.y == 1.0 {
            Point2::new(0.0, 1.0)
        } else if p.x == 0.0 {
            Point2::new(-1.0, 0.0)
        } else {
            Point2::new(1.0, 0.0)
        };
        (NodeKind::Dirichlet, 1, normal)
    }

    fn ctx(nx: usize) -> GlobalCollocation {
        let ns = unit_square_grid(nx, nx, all_dirichlet);
        GlobalCollocation::new(&ns, RbfKernel::Phs3, 1).unwrap()
    }

    #[test]
    fn sizes() {
        let c = ctx(5);
        assert_eq!(c.n(), 25);
        assert_eq!(c.m(), 3);
        assert_eq!(c.size(), 28);
    }

    #[test]
    fn fit_matrix_is_symmetric() {
        let ns = unit_square_grid(4, 4, all_dirichlet);
        let a = fit_matrix(&ns, RbfKernel::Phs3, PolyBasis::new(1));
        let at = a.transpose();
        assert!((&a - &at).norm_fro() < 1e-12);
    }

    #[test]
    fn interpolation_reproduces_linear_fields_exactly() {
        // With degree-1 augmentation, linear fields are reproduced exactly.
        let c = ctx(6);
        let f = |p: Point2| 2.0 + 3.0 * p.x - 1.5 * p.y;
        let nodal = DVec::from_fn(c.n(), |i| f(c.nodes().point(i)));
        let coeffs = c.fit_values(&nodal).unwrap();
        let probes = [
            Point2::new(0.33, 0.77),
            Point2::new(0.5, 0.5),
            Point2::new(0.91, 0.08),
        ];
        let vals = c.eval_op(DiffOp::Eval, &coeffs, &probes);
        for (v, p) in vals.iter().zip(&probes) {
            assert!((v - f(*p)).abs() < 1e-9, "at {p:?}: {v} vs {}", f(*p));
        }
        // Derivatives of a linear field are its slopes.
        let dx = c.eval_op(DiffOp::Dx, &coeffs, &probes);
        let dy = c.eval_op(DiffOp::Dy, &coeffs, &probes);
        for i in 0..probes.len() {
            assert!((dx[i] - 3.0).abs() < 1e-8);
            assert!((dy[i] + 1.5).abs() < 1e-8);
        }
    }

    #[test]
    fn derivatives_of_smooth_field_are_accurate() {
        let c = ctx(12);
        let f = |p: Point2| (p.x * std::f64::consts::PI).sin() * p.y;
        let nodal = DVec::from_fn(c.n(), |i| f(c.nodes().point(i)));
        let coeffs = c.fit_values(&nodal).unwrap();
        let probe = [Point2::new(0.43, 0.57)];
        let pi = std::f64::consts::PI;
        let dx = c.eval_op(DiffOp::Dx, &coeffs, &probe)[0];
        let dy = c.eval_op(DiffOp::Dy, &coeffs, &probe)[0];
        let expect_dx = pi * (0.43 * pi).cos() * 0.57;
        let expect_dy = (0.43 * pi).sin();
        assert!((dx - expect_dx).abs() < 0.02, "dx {dx} vs {expect_dx}");
        assert!((dy - expect_dy).abs() < 0.02, "dy {dy} vs {expect_dy}");
    }

    #[test]
    fn diff_matrices_differentiate_nodal_fields() {
        // Degree-2 augmentation reproduces the quadratic test field exactly
        // up to conditioning; degree 1 (the paper's choice) is only O(h)
        // accurate on quadratics, which the convergence tests cover instead.
        let ns = unit_square_grid(10, 10, all_dirichlet);
        let c = GlobalCollocation::new(&ns, RbfKernel::Phs3, 2).unwrap();
        let dm = c.diff_matrices().unwrap();
        let f = |p: Point2| p.x * p.x + 2.0 * p.y;
        let nodal = DVec::from_fn(c.n(), |i| f(c.nodes().point(i)));
        let dx = dm.dx.matvec(&nodal).unwrap();
        let lap = dm.lap.matvec(&nodal).unwrap();
        // Check well inside the domain: accuracy degrades towards the
        // boundary (the Runge phenomenon the paper discusses in §2.1/§3).
        for i in c.nodes().interior_range() {
            let p = c.nodes().point(i);
            let margin = p.x.min(p.y).min(1.0 - p.x).min(1.0 - p.y);
            if margin < 0.2 {
                continue;
            }
            assert!(
                (dx[i] - 2.0 * p.x).abs() < 5e-2,
                "dx at {p:?}: {} vs {}",
                dx[i],
                2.0 * p.x
            );
            assert!((lap[i] - 2.0).abs() < 0.1, "lap at {p:?}: {}", lap[i]);
        }
    }

    #[test]
    fn normal_row_equals_directional_combination() {
        let c = ctx(5);
        let x = Point2::new(0.5, 1.0);
        let nrow = c.normal_row(x, Point2::new(0.0, 1.0));
        let dyrow = c.row(DiffOp::Dy, x);
        for (a, b) in nrow.iter().zip(&dyrow) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn assemble_with_bcs_solves_laplace_on_linear_data() {
        // u = x + y is harmonic; imposing it on the boundary must recover it
        // everywhere (the collocation solve is exact for linear fields).
        let c = ctx(8);
        let lap_rows = |_i: usize, p: Point2| c.row(DiffOp::Lap, p);
        let a = c.assemble_with_bcs(lap_rows, 0.0);
        let mut rhs = DVec::zeros(c.size());
        for i in c.nodes().dirichlet_range() {
            let p = c.nodes().point(i);
            rhs[i] = p.x + p.y;
        }
        let coeffs = Lu::factor(&a).unwrap().solve(&rhs).unwrap();
        let nodal = c.eval_op(DiffOp::Eval, &coeffs, c.nodes().points());
        for i in 0..c.n() {
            let p = c.nodes().point(i);
            assert!(
                (nodal[i] - (p.x + p.y)).abs() < 1e-7,
                "at {p:?}: {} vs {}",
                nodal[i],
                p.x + p.y
            );
        }
    }

    #[test]
    fn scattered_cloud_also_works() {
        let ns = unit_square_scattered(60, 9, all_dirichlet);
        let c = GlobalCollocation::new(&ns, RbfKernel::Phs3, 1).unwrap();
        let f = |p: Point2| 1.0 - 0.5 * p.x + 0.25 * p.y;
        let nodal = DVec::from_fn(c.n(), |i| f(c.nodes().point(i)));
        let coeffs = c.fit_values(&nodal).unwrap();
        let v = c.eval_op(DiffOp::Eval, &coeffs, &[Point2::new(0.4, 0.6)])[0];
        assert!((v - f(Point2::new(0.4, 0.6))).abs() < 1e-8);
    }

    #[test]
    fn conditioning_grid_vs_reported_in_paper() {
        // The paper notes the regular grid gave better-conditioned matrices
        // than a scattered cloud of the same size; surface the estimate.
        let grid = unit_square_grid(7, 7, all_dirichlet);
        let a_grid = fit_matrix(&grid, RbfKernel::Phs3, PolyBasis::new(1));
        let lu = Lu::factor(&a_grid).unwrap();
        let cond = lu.cond_1_estimate(a_grid.norm_1());
        assert!(cond.is_finite() && cond > 1.0);
    }
}
