//! Appended polynomial (monomial) bases for RBF-FD style augmentation.
//!
//! The paper appends polynomials of maximum degree `n` to the RBF expansion
//! (eq. 2): in 2-D, `M = (n+d choose n) = (n+1)(n+2)/2` monomials. With the
//! paper's `n = 1` that is `{1, x, y}` (`M = 3`), which guarantees exact
//! reproduction of linear fields and removes the polyharmonic splines'
//! conditional positive-definiteness obstruction.

use geometry::Point2;

/// The 2-D monomial basis of total degree ≤ `degree`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolyBasis {
    degree: i32,
}

impl PolyBasis {
    /// Creates a basis of total degree ≤ `degree` (use −1 for "none").
    pub fn new(degree: i32) -> Self {
        PolyBasis { degree }
    }

    /// Number of monomials `M = (n+1)(n+2)/2` (0 when degree < 0).
    pub fn len(&self) -> usize {
        if self.degree < 0 {
            0
        } else {
            ((self.degree + 1) * (self.degree + 2) / 2) as usize
        }
    }

    /// Whether the basis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The exponent pairs `(a, b)` of each monomial `x^a y^b`, in graded
    /// lexicographic order: `1, x, y, x², xy, y², …`.
    pub fn exponents(&self) -> Vec<(i32, i32)> {
        let mut out = Vec::with_capacity(self.len());
        for total in 0..=self.degree.max(-1) {
            for a in (0..=total).rev() {
                out.push((a, total - a));
            }
        }
        out
    }

    /// Evaluates every monomial at `p`.
    pub fn eval(&self, p: Point2) -> Vec<f64> {
        self.exponents()
            .iter()
            .map(|&(a, b)| p.x.powi(a) * p.y.powi(b))
            .collect()
    }

    /// `∂/∂x` of every monomial at `p`.
    pub fn eval_dx(&self, p: Point2) -> Vec<f64> {
        self.exponents()
            .iter()
            .map(|&(a, b)| {
                if a == 0 {
                    0.0
                } else {
                    a as f64 * p.x.powi(a - 1) * p.y.powi(b)
                }
            })
            .collect()
    }

    /// `∂/∂y` of every monomial at `p`.
    pub fn eval_dy(&self, p: Point2) -> Vec<f64> {
        self.exponents()
            .iter()
            .map(|&(a, b)| {
                if b == 0 {
                    0.0
                } else {
                    b as f64 * p.x.powi(a) * p.y.powi(b - 1)
                }
            })
            .collect()
    }

    /// `∇²` of every monomial at `p`.
    pub fn eval_lap(&self, p: Point2) -> Vec<f64> {
        self.exponents()
            .iter()
            .map(|&(a, b)| {
                let dxx = if a >= 2 {
                    (a * (a - 1)) as f64 * p.x.powi(a - 2) * p.y.powi(b)
                } else {
                    0.0
                };
                let dyy = if b >= 2 {
                    (b * (b - 1)) as f64 * p.x.powi(a) * p.y.powi(b - 2)
                } else {
                    0.0
                };
                dxx + dyy
            })
            .collect()
    }

    /// Normal derivative `n·∇` of every monomial at `p`.
    pub fn eval_dn(&self, p: Point2, normal: Point2) -> Vec<f64> {
        self.eval_dx(p)
            .iter()
            .zip(self.eval_dy(p))
            .map(|(dx, dy)| normal.x * dx + normal.y * dy)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_binomials() {
        assert_eq!(PolyBasis::new(-1).len(), 0);
        assert_eq!(PolyBasis::new(0).len(), 1);
        assert_eq!(PolyBasis::new(1).len(), 3); // the paper's M = 3
        assert_eq!(PolyBasis::new(2).len(), 6);
        assert_eq!(PolyBasis::new(3).len(), 10);
    }

    #[test]
    fn degree1_basis_is_1_x_y() {
        let b = PolyBasis::new(1);
        assert_eq!(b.exponents(), vec![(0, 0), (1, 0), (0, 1)]);
        let v = b.eval(Point2::new(2.0, 3.0));
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn derivatives_of_degree2() {
        let b = PolyBasis::new(2);
        let p = Point2::new(2.0, 3.0);
        // order: 1, x, y, x^2, xy, y^2
        assert_eq!(b.eval(p), vec![1.0, 2.0, 3.0, 4.0, 6.0, 9.0]);
        assert_eq!(b.eval_dx(p), vec![0.0, 1.0, 0.0, 4.0, 3.0, 0.0]);
        assert_eq!(b.eval_dy(p), vec![0.0, 0.0, 1.0, 0.0, 2.0, 6.0]);
        assert_eq!(b.eval_lap(p), vec![0.0, 0.0, 0.0, 2.0, 0.0, 2.0]);
    }

    #[test]
    fn normal_derivative_combines_components() {
        let b = PolyBasis::new(1);
        let p = Point2::new(0.5, 1.0);
        let n = Point2::new(0.0, 1.0);
        assert_eq!(b.eval_dn(p, n), vec![0.0, 0.0, 1.0]);
        let n = Point2::new(1.0, 0.0);
        assert_eq!(b.eval_dn(p, n), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn empty_basis_evaluates_to_nothing() {
        let b = PolyBasis::new(-1);
        assert!(b.eval(Point2::new(1.0, 1.0)).is_empty());
        assert!(b.eval_lap(Point2::new(1.0, 1.0)).is_empty());
    }

    #[test]
    fn laplacian_harmonic_combination_vanishes() {
        // x² − y² is harmonic: the Laplacian rows must cancel.
        let b = PolyBasis::new(2);
        let lap = b.eval_lap(Point2::new(1.3, -0.4));
        // coefficients of x² and y²: indices 3 and 5.
        assert!((lap[3] - lap[5] - (lap[3] - lap[5])).abs() < 1e-15);
        assert_eq!(lap[3], 2.0);
        assert_eq!(lap[5], 2.0);
    }
}
