//! RBF-FD: local stencil weights and sparse global operators.
//!
//! Instead of one global `(N+M)²` dense system, RBF-FD (Tolstykh's framework,
//! cited as \[44\] in the paper) computes, for each node, a small set of
//! finite-difference-like weights over its `k` nearest neighbours by solving
//! a local RBF fit system. The global operator is then sparse (`k` nonzeros
//! per row) — the memory-friendly alternative the paper's Table 3 discussion
//! motivates. Per-node solves are embarrassingly parallel (runtime pool).

use crate::kernel::RbfKernel;
use crate::operators::DiffOp;
use crate::poly::PolyBasis;
use geometry::{KdTree, NodeSet, Point2};
use linalg::{Csr, DMat, DVec, LinalgError, Lu, Triplets};
use meshfree_runtime::par;

/// RBF-FD configuration.
#[derive(Debug, Clone, Copy)]
pub struct FdConfig {
    /// Stencil size `k` (nearest neighbours, including the node itself).
    pub stencil_size: usize,
    /// Appended polynomial degree.
    pub degree: i32,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig {
            stencil_size: 13,
            degree: 1,
        }
    }
}

impl FdConfig {
    /// A configuration whose stencil comfortably supports the requested
    /// polynomial degree: roughly twice the number of monomials (the usual
    /// RBF-FD sizing rule), never below the default 13-point stencil.
    pub fn for_degree(degree: i32) -> FdConfig {
        let m = PolyBasis::new(degree).len();
        FdConfig {
            stencil_size: (2 * m + 1).max(13),
            degree,
        }
    }
}

/// Reusable scratch for stencil-weight solves.
///
/// One local fit system `[Φ P; Pᵀ 0]` (size `(k+m)²`), its LU factors, the
/// right-hand side and the solution buffer are allocated once and recycled
/// across every stencil of an assembly sweep — the parallel loops hand one
/// workspace to each pool chunk instead of allocating per node.
#[derive(Debug)]
pub struct FdWorkspace {
    /// Local fit matrix `[Φ P; Pᵀ 0]`, resized on stencil-shape change.
    a: DMat,
    /// LU storage, refactored in place per stencil ([`Lu::refactor`]).
    lu: Option<Lu>,
    rhs: DVec,
    sol: DVec,
    local: Vec<Point2>,
}

impl FdWorkspace {
    /// An empty workspace; buffers size themselves on first use.
    pub fn new() -> FdWorkspace {
        FdWorkspace {
            a: DMat::zeros(0, 0),
            lu: None,
            rhs: DVec::zeros(0),
            sol: DVec::zeros(0),
            local: Vec::new(),
        }
    }
}

impl Default for FdWorkspace {
    fn default() -> Self {
        FdWorkspace::new()
    }
}

/// Computes RBF-FD weights for `op` at `center` over the given neighbour
/// points. Coordinates are shifted to the stencil centre for conditioning.
///
/// Convenience wrapper over [`fd_weights_into`] with a throwaway workspace;
/// assembly loops should hold an [`FdWorkspace`] and call the `_into` form.
pub fn fd_weights(
    center: Point2,
    neighbours: &[Point2],
    kernel: RbfKernel,
    degree: i32,
    op: DiffOp,
) -> Result<Vec<f64>, LinalgError> {
    let mut ws = FdWorkspace::new();
    let mut out = Vec::new();
    fd_weights_into(center, neighbours, kernel, degree, op, &mut ws, &mut out)?;
    Ok(out)
}

/// [`fd_weights`] into caller-owned buffers: the local system is assembled,
/// factored and solved inside `ws`, and the `k` stencil weights are written
/// to `out`. Produces the same bits as [`fd_weights`] for any workspace
/// history — every reused entry is overwritten or re-zeroed before use.
pub fn fd_weights_into(
    center: Point2,
    neighbours: &[Point2],
    kernel: RbfKernel,
    degree: i32,
    op: DiffOp,
    ws: &mut FdWorkspace,
    out: &mut Vec<f64>,
) -> Result<(), LinalgError> {
    let mut outs = [std::mem::take(out)];
    let res = fd_weights_multi_into(center, neighbours, kernel, degree, &[op], ws, &mut outs);
    *out = std::mem::take(&mut outs[0]);
    res
}

/// Multi-operator form of [`fd_weights_into`]: one local fit system
/// `[Φ P; Pᵀ 0]`, assembled and factored **once**, then back-solved for
/// every operator in `ops` (`outs[q]` receives the `k` weights of
/// `ops[q]`). The factorisation depends only on the stencil geometry, so
/// each weight set is bitwise identical to a standalone [`fd_weights_into`]
/// call for that operator — this is the cost lever for saddle-point
/// assembly, which needs `∂x`, `∂y` and `∇²` on every stencil.
pub fn fd_weights_multi_into(
    center: Point2,
    neighbours: &[Point2],
    kernel: RbfKernel,
    degree: i32,
    ops: &[DiffOp],
    ws: &mut FdWorkspace,
    outs: &mut [Vec<f64>],
) -> Result<(), LinalgError> {
    assert_eq!(ops.len(), outs.len(), "one output buffer per operator");
    let k = neighbours.len();
    let basis = PolyBasis::new(degree);
    let m = basis.len();
    assert!(
        k >= m,
        "stencil of {k} points cannot support {m} polynomial constraints"
    );
    let size = k + m;
    // Local (shifted) coordinates.
    ws.local.clear();
    ws.local.extend(neighbours.iter().map(|&p| p - center));
    let local = &ws.local[..];
    let origin = Point2::new(0.0, 0.0);
    // Local fit matrix [Φ P; Pᵀ 0].
    if ws.a.shape() != (size, size) {
        ws.a = DMat::zeros(size, size);
    } else {
        // The fill below overwrites everything except the m×m zero block.
        for i in k..size {
            for j in k..size {
                ws.a[(i, j)] = 0.0;
            }
        }
    }
    let exps = basis.exponents();
    for i in 0..k {
        for j in 0..k {
            ws.a[(i, j)] = kernel.eval(local[i].dist(&local[j]));
        }
        for (j, &(ea, eb)) in exps.iter().enumerate() {
            // Inlined `basis.eval(local[i])[j]` — same expression, no
            // per-point Vec.
            let v = local[i].x.powi(ea) * local[i].y.powi(eb);
            ws.a[(i, k + j)] = v;
            ws.a[(k + j, i)] = v;
        }
    }
    match &mut ws.lu {
        Some(lu) if lu.dim() == size => lu.refactor(&ws.a)?,
        slot => *slot = Some(Lu::factor(&ws.a)?),
    }
    let lu = ws.lu.as_ref().expect("lu populated above");
    // One back-solve per operator against the shared factors.
    ws.rhs.0.resize(size, 0.0);
    for (&op, out) in ops.iter().zip(outs.iter_mut()) {
        // RHS: the operator applied to each basis function at the centre.
        for (j, p) in local.iter().enumerate().take(k) {
            let r = origin.dist(p);
            ws.rhs[j] = match op {
                DiffOp::Eval => kernel.eval(r),
                DiffOp::Dx => (origin.x - p.x) * kernel.d1_over_r(r),
                DiffOp::Dy => (origin.y - p.y) * kernel.d1_over_r(r),
                DiffOp::Lap => kernel.laplacian2d(r),
            };
        }
        let poly_rhs = match op {
            DiffOp::Eval => basis.eval(origin),
            DiffOp::Dx => basis.eval_dx(origin),
            DiffOp::Dy => basis.eval_dy(origin),
            DiffOp::Lap => basis.eval_lap(origin),
        };
        for (j, v) in poly_rhs.into_iter().enumerate() {
            ws.rhs[k + j] = v;
        }
        lu.solve_into(&ws.rhs, &mut ws.sol)?;
        out.clear();
        out.extend_from_slice(&ws.sol.as_slice()[..k]);
    }
    Ok(())
}

/// Precomputed k-nearest-neighbour stencils over a fixed node set.
///
/// Building the kd-tree and querying every node's stencil is pure geometry —
/// it depends only on the node coordinates, not on the operator being
/// assembled. Build a `StencilSet` once per node set and reuse it across
/// every [`fd_matrix_from_stencils`] call (`∂x`, `∂y`, `∇²`, repeated
/// assemblies in optimization loops) instead of re-querying the tree.
#[derive(Debug, Clone)]
pub struct StencilSet {
    /// Flattened neighbour indices, `k` per node, closest-first.
    idx: Vec<usize>,
    /// Stencil size (clamped to the cloud size).
    k: usize,
    /// Number of nodes.
    n: usize,
}

impl StencilSet {
    /// Builds the stencils of `nodes` with a fresh kd-tree.
    pub fn build(nodes: &NodeSet, stencil_size: usize) -> StencilSet {
        let tree = KdTree::build(nodes.points());
        StencilSet::from_tree(nodes, &tree, stencil_size)
    }

    /// Builds the stencils from an existing tree over the same points.
    /// Queries run in parallel with per-chunk scratch buffers.
    pub fn from_tree(nodes: &NodeSet, tree: &KdTree, stencil_size: usize) -> StencilSet {
        let n = nodes.len();
        let k = stencil_size.min(n);
        let mut idx = vec![0usize; n * k];
        if k > 0 {
            // Fixed node-block decomposition (at most PAR_BLOCKS blocks),
            // so chunk boundaries never depend on the thread count.
            let block = n.div_ceil(linalg::blocking::PAR_BLOCKS).max(1);
            par::par_chunks_mut(&mut idx, block * k, |c, piece| {
                let mut scratch = Vec::new();
                let mut out = Vec::new();
                let base = c * block;
                for (r, row) in piece.chunks_mut(k).enumerate() {
                    tree.knn_into(nodes.point(base + r), k, &mut scratch, &mut out);
                    row.copy_from_slice(&out);
                }
            });
        }
        StencilSet { idx, k, n }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the set covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Stencil size `k` (after clamping to the cloud size).
    pub fn stencil_size(&self) -> usize {
        self.k
    }

    /// Neighbour indices of node `i`, closest-first (`i` itself leads).
    pub fn neighbours(&self, i: usize) -> &[usize] {
        &self.idx[i * self.k..(i + 1) * self.k]
    }
}

/// Builds the sparse global operator for `op`: row `i` holds the RBF-FD
/// weights of node `i`'s stencil. Rows are computed in parallel.
///
/// Builds a throwaway [`StencilSet`]; callers assembling several operators
/// on the same nodes should build one and use [`fd_matrix_from_stencils`].
pub fn fd_matrix(
    nodes: &NodeSet,
    kernel: RbfKernel,
    cfg: FdConfig,
    op: DiffOp,
) -> Result<Csr, LinalgError> {
    let stencils = StencilSet::build(nodes, cfg.stencil_size);
    fd_matrix_from_stencils(nodes, &stencils, kernel, cfg.degree, op)
}

/// [`fd_matrix`] over precomputed stencils: the kd-tree neighbour lists are
/// reused, and each pool chunk recycles one [`FdWorkspace`] across its rows.
pub fn fd_matrix_from_stencils(
    nodes: &NodeSet,
    stencils: &StencilSet,
    kernel: RbfKernel,
    degree: i32,
    op: DiffOp,
) -> Result<Csr, LinalgError> {
    assert_eq!(
        stencils.len(),
        nodes.len(),
        "stencils built for other nodes"
    );
    let n = nodes.len();
    let per_row: Vec<Result<Vec<f64>, LinalgError>> = par::par_map_collect_with(
        n,
        || (FdWorkspace::new(), Vec::new()),
        |(ws, pts), i| {
            let center = nodes.point(i);
            pts.clear();
            pts.extend(stencils.neighbours(i).iter().map(|&j| nodes.point(j)));
            let mut w = Vec::with_capacity(pts.len());
            fd_weights_into(center, pts, kernel, degree, op, ws, &mut w)?;
            Ok(w)
        },
    );
    let mut t = Triplets::new(n, n);
    for (i, row) in per_row.into_iter().enumerate() {
        let w = row?;
        for (&j, wj) in stencils.neighbours(i).iter().zip(w) {
            t.push(i, j, wj);
        }
    }
    Ok(t.to_csr())
}

/// Assembles several sparse global operators in one parallel sweep over the
/// stencils: each node's local fit system is factored **once** and
/// back-solved for every operator in `ops`, so assembling `{∂x, ∂y, ∇²}`
/// costs one factorisation pass instead of three.
///
/// Returns one CSR per operator, in the order of `ops`. Each returned
/// matrix is bitwise identical to the corresponding
/// [`fd_matrix_from_stencils`] call (the local factors depend only on the
/// stencil geometry), and the assembly is deterministic across pool widths
/// (fixed per-node work decomposition, same as the single-operator path).
/// This is the saddle-point assembly primitive: the Navier–Stokes block
/// operator needs all three derivatives on every stencil.
pub fn fd_matrices_multi(
    nodes: &NodeSet,
    stencils: &StencilSet,
    kernel: RbfKernel,
    degree: i32,
    ops: &[DiffOp],
) -> Result<Vec<Csr>, LinalgError> {
    assert_eq!(
        stencils.len(),
        nodes.len(),
        "stencils built for other nodes"
    );
    let n = nodes.len();
    let nops = ops.len();
    let per_row: Vec<Result<Vec<Vec<f64>>, LinalgError>> = par::par_map_collect_with(
        n,
        || (FdWorkspace::new(), Vec::new()),
        |(ws, pts), i| {
            let center = nodes.point(i);
            pts.clear();
            pts.extend(stencils.neighbours(i).iter().map(|&j| nodes.point(j)));
            let mut outs = vec![Vec::with_capacity(pts.len()); nops];
            fd_weights_multi_into(center, pts, kernel, degree, ops, ws, &mut outs)?;
            Ok(outs)
        },
    );
    let mut triplets: Vec<Triplets> = (0..nops).map(|_| Triplets::new(n, n)).collect();
    for (i, row) in per_row.into_iter().enumerate() {
        let weight_sets = row?;
        for (t, w) in triplets.iter_mut().zip(weight_sets) {
            for (&j, wj) in stencils.neighbours(i).iter().zip(w) {
                t.push(i, j, wj);
            }
        }
    }
    Ok(triplets.into_iter().map(|t| t.to_csr()).collect())
}

/// Normal-derivative sparse operator (`n·∇`) using each boundary node's
/// outward normal; interior rows are zero. The `∂x` and `∂y` assemblies
/// share one [`StencilSet`] (one kd-tree build, one neighbour sweep).
pub fn fd_normal_matrix(
    nodes: &NodeSet,
    kernel: RbfKernel,
    cfg: FdConfig,
) -> Result<Csr, LinalgError> {
    let stencils = StencilSet::build(nodes, cfg.stencil_size);
    let dx = fd_matrix_from_stencils(nodes, &stencils, kernel, cfg.degree, DiffOp::Dx)?;
    let dy = fd_matrix_from_stencils(nodes, &stencils, kernel, cfg.degree, DiffOp::Dy)?;
    let n = nodes.len();
    let mut t = Triplets::new(n, n);
    for i in nodes.boundary_indices() {
        if let Some(nrm) = nodes.normal(i) {
            let (cols, vals) = dx.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                t.push(i, j, nrm.x * v);
            }
            let (cols, vals) = dy.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                t.push(i, j, nrm.y * v);
            }
        }
    }
    Ok(t.to_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::generators::{unit_square_grid, unit_square_scattered, BoundaryClass};
    use geometry::NodeKind;
    use linalg::{gmres, IterOpts, Preconditioner};

    fn all_dirichlet(p: Point2) -> BoundaryClass {
        let normal = if p.y == 0.0 {
            Point2::new(0.0, -1.0)
        } else if p.y == 1.0 {
            Point2::new(0.0, 1.0)
        } else if p.x == 0.0 {
            Point2::new(-1.0, 0.0)
        } else {
            Point2::new(1.0, 0.0)
        };
        (NodeKind::Dirichlet, 1, normal)
    }

    #[test]
    fn for_degree_sizes_stencils_to_support_the_basis() {
        for degree in 0..=4 {
            let cfg = FdConfig::for_degree(degree);
            assert_eq!(cfg.degree, degree);
            assert!(
                cfg.stencil_size >= PolyBasis::new(degree).len(),
                "degree {degree}: stencil {} below basis size",
                cfg.stencil_size
            );
            assert!(cfg.stencil_size >= 13);
        }
        // Degree 4 has 15 monomials → a 13-point stencil would be singular.
        assert!(FdConfig::for_degree(4).stencil_size >= 31);
    }

    #[test]
    fn weights_reproduce_polynomial_derivatives_exactly() {
        // Degree-2 augmentation: Laplacian of x² + y² must be exactly 4.
        let center = Point2::new(0.4, 0.6);
        let mut pts = vec![center];
        for k in 0..12 {
            let a = k as f64 * std::f64::consts::TAU / 12.0;
            pts.push(center + Point2::new(a.cos(), a.sin()) * 0.08);
        }
        let w = fd_weights(center, &pts, RbfKernel::Phs3, 2, DiffOp::Lap).unwrap();
        let lap: f64 = w
            .iter()
            .zip(&pts)
            .map(|(wi, p)| wi * (p.x * p.x + p.y * p.y))
            .sum();
        assert!((lap - 4.0).abs() < 1e-8, "lap = {lap}");
        // Dx of a linear field.
        let w = fd_weights(center, &pts, RbfKernel::Phs3, 2, DiffOp::Dx).unwrap();
        let dx: f64 = w
            .iter()
            .zip(&pts)
            .map(|(wi, p)| wi * (3.0 * p.x - p.y))
            .sum();
        assert!((dx - 3.0).abs() < 1e-8, "dx = {dx}");
    }

    #[test]
    fn eval_weights_are_a_delta() {
        let center = Point2::new(0.0, 0.0);
        let pts = vec![
            center,
            Point2::new(0.1, 0.0),
            Point2::new(0.0, 0.1),
            Point2::new(-0.1, 0.0),
            Point2::new(0.0, -0.1),
        ];
        let w = fd_weights(center, &pts, RbfKernel::Phs3, 1, DiffOp::Eval).unwrap();
        assert!((w[0] - 1.0).abs() < 1e-10);
        for wi in &w[1..] {
            assert!(wi.abs() < 1e-10);
        }
    }

    #[test]
    fn fd_matrix_differentiates_smooth_fields() {
        let ns = unit_square_grid(15, 15, all_dirichlet);
        let cfg = FdConfig {
            stencil_size: 12,
            degree: 2,
        };
        let lap = fd_matrix(&ns, RbfKernel::Phs3, cfg, DiffOp::Lap).unwrap();
        let f = DVec::from_fn(ns.len(), |i| {
            let p = ns.point(i);
            p.x * p.x * p.y + p.y * p.y
        });
        let lf = lap.matvec(&f);
        for i in ns.interior_range() {
            let p = ns.point(i);
            let exact = 2.0 * p.y + 2.0;
            assert!(
                (lf[i] - exact).abs() < 5e-2,
                "lap at {p:?}: {} vs {exact}",
                lf[i]
            );
        }
    }

    #[test]
    fn fd_laplacian_convergence_under_refinement() {
        let err_for = |n: usize| {
            let ns = unit_square_grid(n, n, all_dirichlet);
            let cfg = FdConfig {
                stencil_size: 12,
                degree: 2,
            };
            let lap = fd_matrix(&ns, RbfKernel::Phs3, cfg, DiffOp::Lap).unwrap();
            let pi = std::f64::consts::PI;
            let f = DVec::from_fn(ns.len(), |i| {
                let p = ns.point(i);
                (pi * p.x).sin() * (pi * p.y).sin()
            });
            let lf = lap.matvec(&f);
            let mut emax: f64 = 0.0;
            for i in ns.interior_range() {
                let p = ns.point(i);
                let exact = -2.0 * pi * pi * (pi * p.x).sin() * (pi * p.y).sin();
                emax = emax.max((lf[i] - exact).abs());
            }
            emax
        };
        let e1 = err_for(11);
        let e2 = err_for(21);
        assert!(
            e2 < 0.55 * e1,
            "no convergence: e(h)={e1:.3e}, e(h/2)={e2:.3e}"
        );
    }

    #[test]
    fn sparse_laplace_solve_matches_analytic_linear() {
        // Assemble: interior rows = FD Laplacian, boundary rows = identity.
        let ns = unit_square_scattered(120, 13, all_dirichlet);
        let cfg = FdConfig::default();
        let lap = fd_matrix(&ns, RbfKernel::Phs3, cfg, DiffOp::Lap).unwrap();
        let n = ns.len();
        let mut t = Triplets::new(n, n);
        for i in ns.interior_range() {
            let (cols, vals) = lap.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                t.push(i, j, v);
            }
        }
        for i in ns.boundary_indices() {
            t.push(i, i, 1.0);
        }
        let a = t.to_csr();
        let g = |p: Point2| 1.0 + 2.0 * p.x - 0.7 * p.y; // harmonic
        let mut b = DVec::zeros(n);
        for i in ns.boundary_indices() {
            b[i] = g(ns.point(i));
        }
        let res = gmres(
            &a,
            &b,
            &Preconditioner::jacobi_from(&a),
            &IterOpts::gmres().max_iter(4000).tol(1e-11).restart(60),
        )
        .unwrap();
        for i in 0..n {
            assert!(
                (res.x[i] - g(ns.point(i))).abs() < 1e-6,
                "node {i}: {} vs {}",
                res.x[i],
                g(ns.point(i))
            );
        }
    }

    #[test]
    fn normal_matrix_matches_directional_derivative() {
        let ns = unit_square_grid(10, 10, all_dirichlet);
        let cfg = FdConfig {
            stencil_size: 12,
            degree: 2,
        };
        let dn = fd_normal_matrix(&ns, RbfKernel::Phs3, cfg).unwrap();
        let f = DVec::from_fn(ns.len(), |i| {
            let p = ns.point(i);
            p.x + 2.0 * p.y
        });
        let df = dn.matvec(&f);
        for i in ns.boundary_indices() {
            let nrm = ns.normal(i).unwrap();
            let exact = nrm.x + 2.0 * nrm.y;
            assert!(
                (df[i] - exact).abs() < 1e-6,
                "node {i}: {} vs {exact}",
                df[i]
            );
        }
    }

    #[test]
    fn fd_matrix_is_deterministic_across_thread_counts() {
        // Per-node stencil solves are independent; the assembled operator
        // must be identical with any pool size.
        let ns = unit_square_grid(9, 9, all_dirichlet);
        let cfg = FdConfig::default();
        // serial_scope pins the shared runtime pool to its inline path —
        // no per-call pool construction (the old rayon ThreadPoolBuilder).
        let par = fd_matrix(&ns, RbfKernel::Phs3, cfg, DiffOp::Lap).unwrap();
        let seq = par::serial_scope(|| fd_matrix(&ns, RbfKernel::Phs3, cfg, DiffOp::Lap).unwrap());
        assert_eq!(par.to_dense(), seq.to_dense());
    }

    #[test]
    fn stencil_set_matches_fresh_kdtree_queries_exactly() {
        let ns = unit_square_scattered(90, 13, all_dirichlet);
        let stencils = StencilSet::build(&ns, 13);
        let tree = KdTree::build(ns.points());
        assert_eq!(stencils.len(), ns.len());
        assert_eq!(stencils.stencil_size(), 13);
        for i in 0..ns.len() {
            assert_eq!(
                stencils.neighbours(i),
                tree.knn(ns.point(i), 13).as_slice(),
                "node {i} neighbour list diverged"
            );
        }
    }

    #[test]
    fn assembly_from_reused_stencils_matches_fd_matrix_bitwise() {
        let ns = unit_square_scattered(90, 13, all_dirichlet);
        let cfg = FdConfig::default();
        let stencils = StencilSet::build(&ns, cfg.stencil_size);
        for op in [DiffOp::Lap, DiffOp::Dx, DiffOp::Dy] {
            let fresh = fd_matrix(&ns, RbfKernel::Phs3, cfg, op).unwrap();
            let reused =
                fd_matrix_from_stencils(&ns, &stencils, RbfKernel::Phs3, cfg.degree, op).unwrap();
            assert_eq!(fresh.to_dense(), reused.to_dense(), "{op:?} diverged");
        }
    }

    #[test]
    fn multi_op_assembly_is_bitwise_identical_to_single_op_assemblies() {
        let ns = unit_square_scattered(90, 13, all_dirichlet);
        let cfg = FdConfig::default();
        let stencils = StencilSet::build(&ns, cfg.stencil_size);
        let ops = [DiffOp::Dx, DiffOp::Dy, DiffOp::Lap];
        let multi = fd_matrices_multi(&ns, &stencils, RbfKernel::Phs3, cfg.degree, &ops).unwrap();
        assert_eq!(multi.len(), 3);
        for (op, m) in ops.iter().zip(&multi) {
            let single =
                fd_matrix_from_stencils(&ns, &stencils, RbfKernel::Phs3, cfg.degree, *op).unwrap();
            assert_eq!(m.to_dense(), single.to_dense(), "{op:?} diverged");
        }
    }

    #[test]
    fn multi_op_assembly_is_deterministic_across_thread_counts() {
        let ns = unit_square_grid(9, 9, all_dirichlet);
        let cfg = FdConfig::default();
        let stencils = StencilSet::build(&ns, cfg.stencil_size);
        let ops = [DiffOp::Dx, DiffOp::Lap];
        let par_run = fd_matrices_multi(&ns, &stencils, RbfKernel::Phs3, cfg.degree, &ops).unwrap();
        let seq = par::serial_scope(|| {
            fd_matrices_multi(&ns, &stencils, RbfKernel::Phs3, cfg.degree, &ops).unwrap()
        });
        for (a, b) in par_run.iter().zip(&seq) {
            assert_eq!(a.to_dense(), b.to_dense());
        }
    }

    #[test]
    fn workspace_reuse_is_bitwise_identical_to_fresh_workspaces() {
        let center = Point2::new(0.3, 0.7);
        let mut pts = vec![center];
        for k in 0..12 {
            let a = k as f64 * std::f64::consts::TAU / 12.0;
            pts.push(center + Point2::new(a.cos(), a.sin()) * 0.05);
        }
        let mut ws = FdWorkspace::new();
        let mut out = Vec::new();
        // Cycle through ops and stencil shapes with one dirty workspace.
        for op in [DiffOp::Lap, DiffOp::Dx, DiffOp::Eval, DiffOp::Dy] {
            for hi in [pts.len(), pts.len() - 3] {
                let fresh = fd_weights(center, &pts[..hi], RbfKernel::Phs3, 1, op).unwrap();
                fd_weights_into(
                    center,
                    &pts[..hi],
                    RbfKernel::Phs3,
                    1,
                    op,
                    &mut ws,
                    &mut out,
                )
                .unwrap();
                assert_eq!(out, fresh, "{op:?} with k={hi} diverged");
            }
        }
    }

    #[test]
    #[should_panic(expected = "polynomial constraints")]
    fn tiny_stencil_with_big_degree_panics() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.1, 0.0)];
        let _ = fd_weights(pts[0], &pts, RbfKernel::Phs3, 2, DiffOp::Lap);
    }
}
