//! RBF-FD: local stencil weights and sparse global operators.
//!
//! Instead of one global `(N+M)²` dense system, RBF-FD (Tolstykh's framework,
//! cited as \[44\] in the paper) computes, for each node, a small set of
//! finite-difference-like weights over its `k` nearest neighbours by solving
//! a local RBF fit system. The global operator is then sparse (`k` nonzeros
//! per row) — the memory-friendly alternative the paper's Table 3 discussion
//! motivates. Per-node solves are embarrassingly parallel (runtime pool).

use crate::kernel::RbfKernel;
use crate::operators::DiffOp;
use crate::poly::PolyBasis;
use geometry::{KdTree, NodeSet, Point2};
use linalg::{Csr, DMat, DVec, LinalgError, Lu, Triplets};
use meshfree_runtime::par;

/// RBF-FD configuration.
#[derive(Debug, Clone, Copy)]
pub struct FdConfig {
    /// Stencil size `k` (nearest neighbours, including the node itself).
    pub stencil_size: usize,
    /// Appended polynomial degree.
    pub degree: i32,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig {
            stencil_size: 13,
            degree: 1,
        }
    }
}

impl FdConfig {
    /// A configuration whose stencil comfortably supports the requested
    /// polynomial degree: roughly twice the number of monomials (the usual
    /// RBF-FD sizing rule), never below the default 13-point stencil.
    pub fn for_degree(degree: i32) -> FdConfig {
        let m = PolyBasis::new(degree).len();
        FdConfig {
            stencil_size: (2 * m + 1).max(13),
            degree,
        }
    }
}

/// Computes RBF-FD weights for `op` at `center` over the given neighbour
/// points. Coordinates are shifted to the stencil centre for conditioning.
pub fn fd_weights(
    center: Point2,
    neighbours: &[Point2],
    kernel: RbfKernel,
    degree: i32,
    op: DiffOp,
) -> Result<Vec<f64>, LinalgError> {
    let k = neighbours.len();
    let basis = PolyBasis::new(degree);
    let m = basis.len();
    assert!(
        k >= m,
        "stencil of {k} points cannot support {m} polynomial constraints"
    );
    // Local (shifted) coordinates.
    let local: Vec<Point2> = neighbours.iter().map(|&p| p - center).collect();
    let origin = Point2::new(0.0, 0.0);
    // Local fit matrix [Φ P; Pᵀ 0].
    let mut a = DMat::zeros(k + m, k + m);
    for i in 0..k {
        for j in 0..k {
            a[(i, j)] = kernel.eval(local[i].dist(&local[j]));
        }
        for (j, v) in basis.eval(local[i]).into_iter().enumerate() {
            a[(i, k + j)] = v;
            a[(k + j, i)] = v;
        }
    }
    // RHS: the operator applied to each basis function at the centre.
    let mut rhs = DVec::zeros(k + m);
    for j in 0..k {
        let r = origin.dist(&local[j]);
        rhs[j] = match op {
            DiffOp::Eval => kernel.eval(r),
            DiffOp::Dx => (origin.x - local[j].x) * kernel.d1_over_r(r),
            DiffOp::Dy => (origin.y - local[j].y) * kernel.d1_over_r(r),
            DiffOp::Lap => kernel.laplacian2d(r),
        };
    }
    let poly_rhs = match op {
        DiffOp::Eval => basis.eval(origin),
        DiffOp::Dx => basis.eval_dx(origin),
        DiffOp::Dy => basis.eval_dy(origin),
        DiffOp::Lap => basis.eval_lap(origin),
    };
    for (j, v) in poly_rhs.into_iter().enumerate() {
        rhs[k + j] = v;
    }
    let sol = Lu::factor(&a)?.solve(&rhs)?;
    Ok(sol.as_slice()[..k].to_vec())
}

/// One assembled stencil row: column indices and their weights.
type StencilRow = Result<(Vec<usize>, Vec<f64>), LinalgError>;

/// Builds the sparse global operator for `op`: row `i` holds the RBF-FD
/// weights of node `i`'s stencil. Rows are computed in parallel.
pub fn fd_matrix(
    nodes: &NodeSet,
    kernel: RbfKernel,
    cfg: FdConfig,
    op: DiffOp,
) -> Result<Csr, LinalgError> {
    let tree = KdTree::build(nodes.points());
    let n = nodes.len();
    let per_row: Vec<StencilRow> = par::par_map_collect(n, |i| {
        let center = nodes.point(i);
        let idx = tree.knn(center, cfg.stencil_size);
        let pts: Vec<Point2> = idx.iter().map(|&j| nodes.point(j)).collect();
        let w = fd_weights(center, &pts, kernel, cfg.degree, op)?;
        Ok((idx, w))
    });
    let mut t = Triplets::new(n, n);
    for (i, row) in per_row.into_iter().enumerate() {
        let (idx, w) = row?;
        for (j, wj) in idx.into_iter().zip(w) {
            t.push(i, j, wj);
        }
    }
    Ok(t.to_csr())
}

/// Normal-derivative sparse operator (`n·∇`) using each boundary node's
/// outward normal; interior rows are zero.
pub fn fd_normal_matrix(
    nodes: &NodeSet,
    kernel: RbfKernel,
    cfg: FdConfig,
) -> Result<Csr, LinalgError> {
    let dx = fd_matrix(nodes, kernel, cfg, DiffOp::Dx)?;
    let dy = fd_matrix(nodes, kernel, cfg, DiffOp::Dy)?;
    let n = nodes.len();
    let mut t = Triplets::new(n, n);
    for i in nodes.boundary_indices() {
        if let Some(nrm) = nodes.normal(i) {
            let (cols, vals) = dx.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                t.push(i, j, nrm.x * v);
            }
            let (cols, vals) = dy.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                t.push(i, j, nrm.y * v);
            }
        }
    }
    Ok(t.to_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::generators::{unit_square_grid, unit_square_scattered, BoundaryClass};
    use geometry::NodeKind;
    use linalg::{gmres, IterOpts, Preconditioner};

    fn all_dirichlet(p: Point2) -> BoundaryClass {
        let normal = if p.y == 0.0 {
            Point2::new(0.0, -1.0)
        } else if p.y == 1.0 {
            Point2::new(0.0, 1.0)
        } else if p.x == 0.0 {
            Point2::new(-1.0, 0.0)
        } else {
            Point2::new(1.0, 0.0)
        };
        (NodeKind::Dirichlet, 1, normal)
    }

    #[test]
    fn for_degree_sizes_stencils_to_support_the_basis() {
        for degree in 0..=4 {
            let cfg = FdConfig::for_degree(degree);
            assert_eq!(cfg.degree, degree);
            assert!(
                cfg.stencil_size >= PolyBasis::new(degree).len(),
                "degree {degree}: stencil {} below basis size",
                cfg.stencil_size
            );
            assert!(cfg.stencil_size >= 13);
        }
        // Degree 4 has 15 monomials → a 13-point stencil would be singular.
        assert!(FdConfig::for_degree(4).stencil_size >= 31);
    }

    #[test]
    fn weights_reproduce_polynomial_derivatives_exactly() {
        // Degree-2 augmentation: Laplacian of x² + y² must be exactly 4.
        let center = Point2::new(0.4, 0.6);
        let mut pts = vec![center];
        for k in 0..12 {
            let a = k as f64 * std::f64::consts::TAU / 12.0;
            pts.push(center + Point2::new(a.cos(), a.sin()) * 0.08);
        }
        let w = fd_weights(center, &pts, RbfKernel::Phs3, 2, DiffOp::Lap).unwrap();
        let lap: f64 = w
            .iter()
            .zip(&pts)
            .map(|(wi, p)| wi * (p.x * p.x + p.y * p.y))
            .sum();
        assert!((lap - 4.0).abs() < 1e-8, "lap = {lap}");
        // Dx of a linear field.
        let w = fd_weights(center, &pts, RbfKernel::Phs3, 2, DiffOp::Dx).unwrap();
        let dx: f64 = w
            .iter()
            .zip(&pts)
            .map(|(wi, p)| wi * (3.0 * p.x - p.y))
            .sum();
        assert!((dx - 3.0).abs() < 1e-8, "dx = {dx}");
    }

    #[test]
    fn eval_weights_are_a_delta() {
        let center = Point2::new(0.0, 0.0);
        let pts = vec![
            center,
            Point2::new(0.1, 0.0),
            Point2::new(0.0, 0.1),
            Point2::new(-0.1, 0.0),
            Point2::new(0.0, -0.1),
        ];
        let w = fd_weights(center, &pts, RbfKernel::Phs3, 1, DiffOp::Eval).unwrap();
        assert!((w[0] - 1.0).abs() < 1e-10);
        for wi in &w[1..] {
            assert!(wi.abs() < 1e-10);
        }
    }

    #[test]
    fn fd_matrix_differentiates_smooth_fields() {
        let ns = unit_square_grid(15, 15, all_dirichlet);
        let cfg = FdConfig {
            stencil_size: 12,
            degree: 2,
        };
        let lap = fd_matrix(&ns, RbfKernel::Phs3, cfg, DiffOp::Lap).unwrap();
        let f = DVec::from_fn(ns.len(), |i| {
            let p = ns.point(i);
            p.x * p.x * p.y + p.y * p.y
        });
        let lf = lap.matvec(&f);
        for i in ns.interior_range() {
            let p = ns.point(i);
            let exact = 2.0 * p.y + 2.0;
            assert!(
                (lf[i] - exact).abs() < 5e-2,
                "lap at {p:?}: {} vs {exact}",
                lf[i]
            );
        }
    }

    #[test]
    fn fd_laplacian_convergence_under_refinement() {
        let err_for = |n: usize| {
            let ns = unit_square_grid(n, n, all_dirichlet);
            let cfg = FdConfig {
                stencil_size: 12,
                degree: 2,
            };
            let lap = fd_matrix(&ns, RbfKernel::Phs3, cfg, DiffOp::Lap).unwrap();
            let pi = std::f64::consts::PI;
            let f = DVec::from_fn(ns.len(), |i| {
                let p = ns.point(i);
                (pi * p.x).sin() * (pi * p.y).sin()
            });
            let lf = lap.matvec(&f);
            let mut emax: f64 = 0.0;
            for i in ns.interior_range() {
                let p = ns.point(i);
                let exact = -2.0 * pi * pi * (pi * p.x).sin() * (pi * p.y).sin();
                emax = emax.max((lf[i] - exact).abs());
            }
            emax
        };
        let e1 = err_for(11);
        let e2 = err_for(21);
        assert!(
            e2 < 0.55 * e1,
            "no convergence: e(h)={e1:.3e}, e(h/2)={e2:.3e}"
        );
    }

    #[test]
    fn sparse_laplace_solve_matches_analytic_linear() {
        // Assemble: interior rows = FD Laplacian, boundary rows = identity.
        let ns = unit_square_scattered(120, 13, all_dirichlet);
        let cfg = FdConfig::default();
        let lap = fd_matrix(&ns, RbfKernel::Phs3, cfg, DiffOp::Lap).unwrap();
        let n = ns.len();
        let mut t = Triplets::new(n, n);
        for i in ns.interior_range() {
            let (cols, vals) = lap.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                t.push(i, j, v);
            }
        }
        for i in ns.boundary_indices() {
            t.push(i, i, 1.0);
        }
        let a = t.to_csr();
        let g = |p: Point2| 1.0 + 2.0 * p.x - 0.7 * p.y; // harmonic
        let mut b = DVec::zeros(n);
        for i in ns.boundary_indices() {
            b[i] = g(ns.point(i));
        }
        let res = gmres(
            &a,
            &b,
            &Preconditioner::jacobi_from(&a),
            &IterOpts {
                max_iter: 4000,
                rel_tol: 1e-11,
                restart: 60,
            },
        )
        .unwrap();
        for i in 0..n {
            assert!(
                (res.x[i] - g(ns.point(i))).abs() < 1e-6,
                "node {i}: {} vs {}",
                res.x[i],
                g(ns.point(i))
            );
        }
    }

    #[test]
    fn normal_matrix_matches_directional_derivative() {
        let ns = unit_square_grid(10, 10, all_dirichlet);
        let cfg = FdConfig {
            stencil_size: 12,
            degree: 2,
        };
        let dn = fd_normal_matrix(&ns, RbfKernel::Phs3, cfg).unwrap();
        let f = DVec::from_fn(ns.len(), |i| {
            let p = ns.point(i);
            p.x + 2.0 * p.y
        });
        let df = dn.matvec(&f);
        for i in ns.boundary_indices() {
            let nrm = ns.normal(i).unwrap();
            let exact = nrm.x + 2.0 * nrm.y;
            assert!(
                (df[i] - exact).abs() < 1e-6,
                "node {i}: {} vs {exact}",
                df[i]
            );
        }
    }

    #[test]
    fn fd_matrix_is_deterministic_across_thread_counts() {
        // Per-node stencil solves are independent; the assembled operator
        // must be identical with any pool size.
        let ns = unit_square_grid(9, 9, all_dirichlet);
        let cfg = FdConfig::default();
        // serial_scope pins the shared runtime pool to its inline path —
        // no per-call pool construction (the old rayon ThreadPoolBuilder).
        let par = fd_matrix(&ns, RbfKernel::Phs3, cfg, DiffOp::Lap).unwrap();
        let seq = par::serial_scope(|| fd_matrix(&ns, RbfKernel::Phs3, cfg, DiffOp::Lap).unwrap());
        assert_eq!(par.to_dense(), seq.to_dense());
    }

    #[test]
    #[should_panic(expected = "polynomial constraints")]
    fn tiny_stencil_with_big_degree_panics() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.1, 0.0)];
        let _ = fd_weights(pts[0], &pts, RbfKernel::Phs3, 2, DiffOp::Lap);
    }
}
