//! Scattered-data interpolation with RBFs.
//!
//! A thin, user-facing layer over [`crate::operators::GlobalCollocation`]:
//! fit once, then evaluate the interpolant (or any of its derivatives)
//! anywhere. This is the "RBFs as universal approximators" entry point the
//! paper's §2.1 describes, independent of any PDE.

use crate::kernel::RbfKernel;
use crate::operators::{DiffOp, GlobalCollocation};
use geometry::{NodeKind, NodeSet, Point2, RawNode};
use linalg::{DVec, LinalgError};

/// A fitted RBF interpolant over a scattered point cloud.
pub struct Interpolant {
    ctx: GlobalCollocation,
    coeffs: DVec,
}

impl Interpolant {
    /// Fits an interpolant through `(points[i], values[i])`.
    pub fn fit(
        points: &[Point2],
        values: &[f64],
        kernel: RbfKernel,
        degree: i32,
    ) -> Result<Interpolant, LinalgError> {
        assert_eq!(points.len(), values.len(), "fit: length mismatch");
        // Interpolation has no boundary semantics: wrap all points as
        // interior nodes.
        let raw: Vec<RawNode> = points
            .iter()
            .map(|&p| RawNode {
                p,
                kind: NodeKind::Interior,
                tag: 0,
                normal: None,
            })
            .collect();
        let nodes = NodeSet::from_unordered(raw);
        let ctx = GlobalCollocation::new(&nodes, kernel, degree)?;
        let coeffs = ctx.fit_values(&DVec(values.to_vec()))?;
        Ok(Interpolant { ctx, coeffs })
    }

    /// Evaluates the interpolant at `p`.
    pub fn eval(&self, p: Point2) -> f64 {
        self.ctx.eval_op(DiffOp::Eval, &self.coeffs, &[p])[0]
    }

    /// Evaluates at many points.
    pub fn eval_many(&self, points: &[Point2]) -> DVec {
        self.ctx.eval_op(DiffOp::Eval, &self.coeffs, points)
    }

    /// Gradient `(∂x, ∂y)` at `p`.
    pub fn grad(&self, p: Point2) -> (f64, f64) {
        (
            self.ctx.eval_op(DiffOp::Dx, &self.coeffs, &[p])[0],
            self.ctx.eval_op(DiffOp::Dy, &self.coeffs, &[p])[0],
        )
    }

    /// Laplacian at `p`.
    pub fn laplacian(&self, p: Point2) -> f64 {
        self.ctx.eval_op(DiffOp::Lap, &self.coeffs, &[p])[0]
    }

    /// The fitted coefficient vector `[λ; γ]`.
    pub fn coefficients(&self) -> &DVec {
        &self.coeffs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::generators::halton2;

    fn test_points(n: usize) -> Vec<Point2> {
        halton2(n)
    }

    #[test]
    fn interpolates_its_own_data() {
        let pts = test_points(40);
        let vals: Vec<f64> = pts.iter().map(|p| (3.0 * p.x).sin() + p.y).collect();
        let it = Interpolant::fit(&pts, &vals, RbfKernel::Phs3, 1).unwrap();
        for (p, v) in pts.iter().zip(&vals) {
            assert!((it.eval(*p) - v).abs() < 1e-8, "at {p:?}");
        }
    }

    #[test]
    fn reproduces_linear_fields_everywhere() {
        let pts = test_points(25);
        let f = |p: Point2| 4.0 - 2.0 * p.x + 0.5 * p.y;
        let vals: Vec<f64> = pts.iter().map(|&p| f(p)).collect();
        let it = Interpolant::fit(&pts, &vals, RbfKernel::Phs3, 1).unwrap();
        for q in [
            Point2::new(0.111, 0.222),
            Point2::new(0.9, 0.05),
            Point2::new(0.5, 0.5),
        ] {
            assert!((it.eval(q) - f(q)).abs() < 1e-8);
            let (dx, dy) = it.grad(q);
            assert!((dx + 2.0).abs() < 1e-7);
            assert!((dy - 0.5).abs() < 1e-7);
        }
    }

    #[test]
    fn error_decreases_with_more_centres() {
        let f = |p: Point2| (2.0 * p.x + p.y).exp() / 10.0;
        let err_with = |n: usize| {
            let pts = test_points(n);
            let vals: Vec<f64> = pts.iter().map(|&p| f(p)).collect();
            let it = Interpolant::fit(&pts, &vals, RbfKernel::Phs3, 1).unwrap();
            let probes = halton2(200);
            probes
                .iter()
                .map(|&q| (it.eval(q) - f(q)).abs())
                .fold(0.0f64, f64::max)
        };
        let e_small = err_with(20);
        let e_large = err_with(120);
        assert!(
            e_large < 0.5 * e_small,
            "no convergence: {e_small:.3e} -> {e_large:.3e}"
        );
    }

    #[test]
    fn gaussian_kernel_interpolates_too() {
        let pts = test_points(30);
        let f = |p: Point2| p.x * p.y;
        let vals: Vec<f64> = pts.iter().map(|&p| f(p)).collect();
        let it = Interpolant::fit(&pts, &vals, RbfKernel::Gaussian(2.0), 1).unwrap();
        for (p, v) in pts.iter().zip(&vals) {
            assert!((it.eval(*p) - v).abs() < 1e-6);
        }
    }

    #[test]
    fn laplacian_of_quadratic() {
        let pts = test_points(60);
        let f = |p: Point2| p.x * p.x + 3.0 * p.y * p.y;
        let vals: Vec<f64> = pts.iter().map(|&p| f(p)).collect();
        let it = Interpolant::fit(&pts, &vals, RbfKernel::Phs3, 2).unwrap();
        let l = it.laplacian(Point2::new(0.5, 0.5));
        assert!((l - 8.0).abs() < 0.2, "laplacian {l}");
    }
}
