#![warn(missing_docs)]

//! # meshfree-rbf
//!
//! The Radial-Basis-Function discretisation layer — this workspace's
//! equivalent of the paper's Updec library.
//!
//! * [`kernel`] — the RBF zoo (`φ(r)`): polyharmonic splines (the paper's
//!   choice, `φ(r) = r³`), Gaussians, (inverse) multiquadrics, thin-plate
//!   splines. Kernels are written once, generically over
//!   [`autodiff::Scalar`], and their radial derivatives are *derived* by
//!   second-order forward-mode AD ([`autodiff::Dual2`]) — the same trick the
//!   paper plays with `jax.grad` so users can "effortlessly choose or design
//!   new functions φ".
//! * [`poly`] — appended monomial bases (the RBF-FD polynomial augmentation
//!   of Tolstykh; the paper uses max degree n = 1, i.e. M = 3 appended
//!   polynomials in 2-D).
//! * [`operators`] — global collocation: fit matrices, operator evaluation
//!   matrices, nodal differentiation matrices, and the boundary-condition
//!   row assembly that exploits the [`geometry::NodeSet`] ordering.
//! * [`fd`] — RBF-FD local stencils: per-node weight solves (parallel via
//!   the runtime pool) assembled into sparse global operators.
//! * [`interp`] — scattered-data interpolation built on the same machinery.

pub mod fd;
pub mod interp;
pub mod kernel;
pub mod operators;
pub mod poly;

pub use interp::Interpolant;
pub use kernel::RbfKernel;
pub use operators::{DiffMatrices, DiffOp, GlobalCollocation};
pub use poly::PolyBasis;
