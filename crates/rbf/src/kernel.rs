//! Radial basis functions and their radial derivatives.
//!
//! Every kernel is a univariate function `φ(r)` of the Euclidean distance.
//! The Cartesian differential operators the PDE layer needs reduce to two
//! radial quantities:
//!
//! * `φ'(r)/r` — gradient: `∂φ/∂x = (x − x_j) · φ'(r)/r`;
//! * `φ''(r)` — 2-D Laplacian: `∇²φ = φ''(r) + φ'(r)/r`.
//!
//! Both are obtained automatically from the generic definition via
//! second-order forward-mode AD ([`Dual2`]); the well-known closed forms are
//! kept alongside purely as test oracles. At `r = 0` the smooth-kernel limit
//! `lim_{r→0} φ'(r)/r = φ''(0)` is used.

use autodiff::{derivative2, Dual2, Scalar};

/// The radial basis functions used in the paper's discussion (§3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RbfKernel {
    /// Polyharmonic spline `r³` — the paper's choice ("to avoid tuning
    /// [a shape] parameter, we opted for the polyharmonic cubic spline").
    Phs3,
    /// Polyharmonic spline `r⁵`.
    Phs5,
    /// Gaussian `exp(−(εr)²)` with shape parameter `ε`.
    Gaussian(f64),
    /// Multiquadric `√(1 + (εr)²)` with shape parameter `ε`.
    Multiquadric(f64),
    /// Inverse multiquadric `1/√(1 + (εr)²)`.
    InverseMultiquadric(f64),
    /// Thin-plate spline `r² ln r` (0 at the origin by continuity).
    ThinPlate,
    /// Wendland C² compactly-supported kernel
    /// `(1 − r/ρ)⁴₊ (4r/ρ + 1)` with support radius `ρ` — gives *sparse*
    /// collocation matrices even in the global formulation.
    WendlandC2(f64),
}

impl RbfKernel {
    /// Evaluates `φ(r)` generically over any [`Scalar`].
    ///
    /// This is the *single* definition of each kernel; derivatives come from
    /// instantiating it with dual numbers.
    pub fn phi<S: Scalar>(&self, r: S) -> S {
        match *self {
            RbfKernel::Phs3 => r.powi(3),
            RbfKernel::Phs5 => r.powi(5),
            RbfKernel::Gaussian(eps) => {
                let er = r * S::from_f64(eps);
                (-(er * er)).exp()
            }
            RbfKernel::Multiquadric(eps) => {
                let er = r * S::from_f64(eps);
                (S::from_f64(1.0) + er * er).sqrt()
            }
            RbfKernel::InverseMultiquadric(eps) => {
                let er = r * S::from_f64(eps);
                S::from_f64(1.0) / (S::from_f64(1.0) + er * er).sqrt()
            }
            RbfKernel::ThinPlate => {
                if r.value() <= 0.0 {
                    S::from_f64(0.0)
                } else {
                    r * r * r.ln()
                }
            }
            RbfKernel::WendlandC2(rho) => {
                if r.value() >= rho {
                    S::from_f64(0.0)
                } else {
                    let t = r * S::from_f64(1.0 / rho);
                    let one = S::from_f64(1.0);
                    let m = one - t;
                    m * m * m * m * (t * S::from_f64(4.0) + one)
                }
            }
        }
    }

    /// `φ(r)` at a plain floating point radius.
    pub fn eval(&self, r: f64) -> f64 {
        self.phi(r)
    }

    /// `(φ, φ', φ'')` at `r`, by forward-mode AD.
    pub fn eval2(&self, r: f64) -> (f64, f64, f64) {
        derivative2(|d: Dual2| self.phi(d), r)
    }

    /// `φ'(r)/r`, with the smooth limit `φ''(0)` at the origin.
    ///
    /// For the polyharmonic splines the limit is 0, consistent with the
    /// closed forms (`φ'(r)/r = 3r` for PHS3).
    pub fn d1_over_r(&self, r: f64) -> f64 {
        const R_TINY: f64 = 1e-12;
        if r > R_TINY {
            let (_, d1, _) = self.eval2(r);
            d1 / r
        } else {
            match *self {
                // Polyharmonic splines & TPS: derivative-over-r vanishes.
                RbfKernel::Phs3 | RbfKernel::Phs5 | RbfKernel::ThinPlate => 0.0,
                _ => {
                    let (_, _, d2) = self.eval2(0.0);
                    d2
                }
            }
        }
    }

    /// Support radius beyond which the kernel is identically zero, if any.
    pub fn support_radius(&self) -> Option<f64> {
        match *self {
            RbfKernel::WendlandC2(rho) => Some(rho),
            _ => None,
        }
    }

    /// 2-D Laplacian `∇²φ = φ'' + φ'/r` at radius `r`.
    pub fn laplacian2d(&self, r: f64) -> f64 {
        const R_TINY: f64 = 1e-12;
        if r > R_TINY {
            let (_, d1, d2) = self.eval2(r);
            d2 + d1 / r
        } else {
            match *self {
                RbfKernel::Phs3 | RbfKernel::Phs5 | RbfKernel::ThinPlate => 0.0,
                _ => {
                    let (_, _, d2) = self.eval2(0.0);
                    2.0 * d2
                }
            }
        }
    }

    /// Closed-form `(φ, φ', φ'')`, kept as a test oracle for the AD path.
    pub fn closed_form2(&self, r: f64) -> (f64, f64, f64) {
        match *self {
            RbfKernel::Phs3 => (r.powi(3), 3.0 * r * r, 6.0 * r),
            RbfKernel::Phs5 => (r.powi(5), 5.0 * r.powi(4), 20.0 * r.powi(3)),
            RbfKernel::Gaussian(eps) => {
                let e2 = eps * eps;
                let g = (-e2 * r * r).exp();
                (g, -2.0 * e2 * r * g, (4.0 * e2 * e2 * r * r - 2.0 * e2) * g)
            }
            RbfKernel::Multiquadric(eps) => {
                let e2 = eps * eps;
                let q = (1.0 + e2 * r * r).sqrt();
                (q, e2 * r / q, e2 / q - e2 * e2 * r * r / (q * q * q))
            }
            RbfKernel::InverseMultiquadric(eps) => {
                let e2 = eps * eps;
                let s = 1.0 + e2 * r * r;
                let q = s.sqrt();
                (
                    1.0 / q,
                    -e2 * r / (q * s),
                    -e2 / (q * s) + 3.0 * e2 * e2 * r * r / (q * s * s),
                )
            }
            RbfKernel::ThinPlate => {
                if r <= 0.0 {
                    (0.0, 0.0, 0.0)
                } else {
                    let l = r.ln();
                    (r * r * l, r * (2.0 * l + 1.0), 2.0 * l + 3.0)
                }
            }
            RbfKernel::WendlandC2(rho) => {
                if r >= rho {
                    (0.0, 0.0, 0.0)
                } else {
                    let t = r / rho;
                    let m = 1.0 - t;
                    // φ = (1−t)⁴(4t+1); φ' = −20 t (1−t)³ / ρ;
                    // φ'' = −20 (1−t)² (1−4t) / ρ².
                    (
                        m.powi(4) * (4.0 * t + 1.0),
                        -20.0 * t * m.powi(3) / rho,
                        -20.0 * m * m * (1.0 - 4.0 * t) / (rho * rho),
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [RbfKernel; 7] = [
        RbfKernel::Phs3,
        RbfKernel::Phs5,
        RbfKernel::Gaussian(1.3),
        RbfKernel::Multiquadric(0.8),
        RbfKernel::InverseMultiquadric(1.1),
        RbfKernel::ThinPlate,
        RbfKernel::WendlandC2(3.0),
    ];

    #[test]
    fn ad_matches_closed_forms() {
        for k in ALL {
            for &r in &[0.05, 0.3, 1.0, 2.7] {
                let (v, d1, d2) = k.eval2(r);
                let (cv, cd1, cd2) = k.closed_form2(r);
                assert!(
                    (v - cv).abs() < 1e-12 * (1.0 + cv.abs()),
                    "{k:?} value at {r}"
                );
                assert!(
                    (d1 - cd1).abs() < 1e-11 * (1.0 + cd1.abs()),
                    "{k:?} d1 at {r}: ad={d1} cf={cd1}"
                );
                assert!(
                    (d2 - cd2).abs() < 1e-10 * (1.0 + cd2.abs()),
                    "{k:?} d2 at {r}: ad={d2} cf={cd2}"
                );
            }
        }
    }

    #[test]
    fn phs3_values() {
        let k = RbfKernel::Phs3;
        assert_eq!(k.eval(2.0), 8.0);
        assert_eq!(k.eval(0.0), 0.0);
        assert!((k.d1_over_r(2.0) - 6.0).abs() < 1e-12); // 3r
        assert!((k.laplacian2d(2.0) - 18.0).abs() < 1e-12); // 6r + 3r
    }

    #[test]
    fn origin_limits_are_finite() {
        for k in ALL {
            let d = k.d1_over_r(0.0);
            let l = k.laplacian2d(0.0);
            assert!(d.is_finite(), "{k:?} d1_over_r(0) = {d}");
            assert!(l.is_finite(), "{k:?} laplacian2d(0) = {l}");
        }
        // Gaussian limit: φ'(r)/r → -2ε².
        let eps = 1.3;
        let g = RbfKernel::Gaussian(eps);
        assert!((g.d1_over_r(0.0) + 2.0 * eps * eps).abs() < 1e-10);
        assert!((g.laplacian2d(0.0) + 4.0 * eps * eps).abs() < 1e-10);
    }

    #[test]
    fn d1_over_r_continuous_near_origin() {
        // Thin-plate is excluded: φ'(r)/r = 2 ln r + 1 genuinely diverges
        // (logarithmically) at the origin — the reason TPS collocation
        // matrices zero that entry via φ(0) = 0 instead.
        for k in ALL {
            if k == RbfKernel::ThinPlate {
                continue;
            }
            let a = k.d1_over_r(1e-6);
            let b = k.d1_over_r(2e-6);
            assert!((a - b).abs() < 1e-4, "{k:?}: {a} vs {b}");
        }
    }

    #[test]
    fn wendland_compact_support_and_smoothness() {
        let k = RbfKernel::WendlandC2(2.0);
        assert_eq!(k.support_radius(), Some(2.0));
        assert_eq!(k.eval(2.0), 0.0);
        assert_eq!(k.eval(5.0), 0.0);
        assert_eq!(k.eval(0.0), 1.0);
        // C² at the support edge: value and first derivative vanish there.
        let (v, d1, _) = k.eval2(2.0 - 1e-9);
        assert!(v.abs() < 1e-8);
        assert!(d1.abs() < 1e-8);
        // Positive definiteness proxy: positive and decreasing inside.
        assert!(k.eval(0.5) > k.eval(1.0));
        assert!(k.eval(1.0) > 0.0);
    }

    #[test]
    fn thin_plate_zero_at_origin() {
        let k = RbfKernel::ThinPlate;
        assert_eq!(k.eval(0.0), 0.0);
        assert!(k.eval(1e-8).abs() < 1e-12);
    }

    #[test]
    fn gaussian_decays_multiquadric_grows() {
        let g = RbfKernel::Gaussian(1.0);
        assert!(g.eval(3.0) < g.eval(1.0));
        let m = RbfKernel::Multiquadric(1.0);
        assert!(m.eval(3.0) > m.eval(1.0));
        let im = RbfKernel::InverseMultiquadric(1.0);
        assert!(im.eval(3.0) < im.eval(1.0));
    }

    /// Property tests need the proptest engine; enable with
    /// `--features proptest`.
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_ad_and_closed_forms_agree(r in 0.01f64..4.0, eps in 0.3f64..2.0) {
                for k in [
                    RbfKernel::Phs3,
                    RbfKernel::Gaussian(eps),
                    RbfKernel::Multiquadric(eps),
                    RbfKernel::InverseMultiquadric(eps),
                    RbfKernel::ThinPlate,
                ] {
                    let (v, d1, d2) = k.eval2(r);
                    let (cv, cd1, cd2) = k.closed_form2(r);
                    prop_assert!((v - cv).abs() < 1e-10 * (1.0 + cv.abs()));
                    prop_assert!((d1 - cd1).abs() < 1e-9 * (1.0 + cd1.abs()));
                    prop_assert!((d2 - cd2).abs() < 1e-8 * (1.0 + cd2.abs()));
                }
            }

            #[test]
            fn prop_kernels_are_radial_even(r in 0.0f64..3.0) {
                // φ depends only on |r| — evaluating the generic definition with
                // a negated dual radius must give the same primal value.
                for k in ALL {
                    prop_assert!((k.eval(r) - k.eval(r.abs())).abs() < 1e-14);
                }
            }
        }
    }
}
