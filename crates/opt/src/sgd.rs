//! Plain (momentum) gradient descent — the ablation baseline against Adam.
//!
//! The paper notes Adam was what made DAL workable on the Laplace problem
//! ("Adam helped increase robustness to noisy gradients at boundaries");
//! `Sgd` exists so the ablation bench can demonstrate that claim.

use crate::schedule::Schedule;
use crate::Optimizer;
use linalg::DVec;

/// Gradient descent with optional heavy-ball momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    schedule: Schedule,
    momentum: f64,
    velocity: DVec,
    t: usize,
}

impl Sgd {
    /// Creates plain gradient descent (`momentum = 0`).
    pub fn new(n_params: usize, schedule: Schedule) -> Sgd {
        Sgd {
            schedule,
            momentum: 0.0,
            velocity: DVec::zeros(n_params),
            t: 0,
        }
    }

    /// Enables heavy-ball momentum.
    pub fn with_momentum(mut self, momentum: f64) -> Sgd {
        self.momentum = momentum;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut DVec, grad: &DVec) {
        assert_eq!(
            grad.len(),
            self.velocity.len(),
            "sgd: wrong gradient length"
        );
        let lr = self.schedule.at(self.t);
        self.t += 1;
        for i in 0..params.len() {
            self.velocity[i] = self.momentum * self.velocity[i] - lr * grad[i];
            params[i] += self.velocity[i];
        }
    }

    fn iteration(&self) -> usize {
        self.t
    }

    fn current_lr(&self) -> f64 {
        self.schedule.at(self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_minimises_quadratic() {
        let mut x = DVec(vec![4.0]);
        let mut sgd = Sgd::new(1, Schedule::Constant(0.1));
        for _ in 0..200 {
            let g = DVec(vec![2.0 * x[0]]);
            sgd.step(&mut x, &g);
        }
        assert!(x[0].abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates_on_ill_conditioned_quadratic() {
        let run = |mom: f64| -> f64 {
            let mut x = DVec(vec![1.0, 1.0]);
            let mut sgd = Sgd::new(2, Schedule::Constant(0.01)).with_momentum(mom);
            for _ in 0..300 {
                let g = DVec(vec![2.0 * x[0], 40.0 * x[1]]);
                sgd.step(&mut x, &g);
            }
            x.norm2()
        };
        assert!(run(0.9) < run(0.0), "momentum did not help");
    }

    #[test]
    fn diverges_with_too_large_rate_unlike_adam() {
        // Supporting evidence for the paper's Adam-for-DAL observation:
        // raw GD at an aggressive rate diverges on a stiff quadratic.
        let mut x = DVec(vec![1.0]);
        let mut sgd = Sgd::new(1, Schedule::Constant(0.5));
        for _ in 0..50 {
            let g = DVec(vec![100.0 * x[0]]);
            sgd.step(&mut x, &g);
        }
        assert!(x[0].abs() > 1.0, "expected divergence, got {}", x[0]);
    }
}
