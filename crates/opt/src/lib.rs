#![warn(missing_docs)]

//! # meshfree-opt
//!
//! Optimizers shared by all three control strategies.
//!
//! The paper uses **Adam everywhere** — "for all our DAL, PINN, and DP
//! experiments, we used the Adam optimiser", noting that, while unusual for
//! DAL/DP, "Adam helped increase robustness to noisy gradients at
//! boundaries due to the Runge phenomenon". The learning-rate schedule is
//! the paper's piecewise-constant decay: "the initial learning rate was
//! divided by 10 after half the iterations or epochs, and again by 10 at
//! 75 % completion."
//!
//! Beyond the paper: the forward-over-reverse composition in
//! `crates/autodiff` provides *exact* Hessian-vector products through the
//! discretised solver, so [`NewtonCg`] (matrix-free trust-region Newton) and
//! [`Lbfgs`] (two-loop recursion) can cut iteration counts by an order of
//! magnitude on the smooth PDE control objectives. They plug into the same
//! [`Optimizer`] trait through the [`Optimizer::step_with_curvature`] hook;
//! Adam stays the paper-faithful default everywhere.

pub mod adam;
pub mod lbfgs;
pub mod newton_cg;
pub mod schedule;
pub mod sgd;

pub use adam::Adam;
pub use lbfgs::Lbfgs;
pub use newton_cg::NewtonCg;
pub use schedule::Schedule;
pub use sgd::Sgd;

use linalg::DVec;

/// Curvature and trial-cost information a second-order optimizer may query
/// at the current iterate.
///
/// Both methods return `None` on failure (solver breakdown, non-finite
/// values); optimizers must degrade gracefully — [`NewtonCg`] and [`Lbfgs`]
/// fall back to an lr-scaled gradient step. Implementations must be
/// deterministic: identical queries in identical order yield bitwise
/// identical answers, preserving the pool-width-invariance contract of the
/// run loops.
pub trait CurvatureOracle {
    /// Exact Hessian-vector product `H(x)·v` at the current iterate.
    fn hvp(&mut self, v: &DVec) -> Option<DVec>;
    /// Objective value at an arbitrary trial point.
    fn cost_at(&mut self, c: &DVec) -> Option<f64>;
}

/// An optimizer over a flat parameter vector.
pub trait Optimizer {
    /// Applies one update step given the gradient at the current point.
    fn step(&mut self, params: &mut DVec, grad: &DVec);
    /// Steps taken so far.
    fn iteration(&self) -> usize;
    /// The learning rate that the *next* step will use.
    fn current_lr(&self) -> f64;
    /// Whether [`Optimizer::step_with_curvature`] actually consumes the
    /// oracle. First-order methods return `false` (the default) and callers
    /// may skip building an oracle entirely.
    fn uses_curvature(&self) -> bool {
        false
    }
    /// One update step with access to the objective value at the current
    /// point and a curvature oracle. The default ignores both and delegates
    /// to [`Optimizer::step`], so first-order optimizers are unchanged.
    fn step_with_curvature(
        &mut self,
        params: &mut DVec,
        cost: f64,
        grad: &DVec,
        oracle: &mut dyn CurvatureOracle,
    ) {
        let _ = (cost, oracle);
        self.step(params, grad);
    }
}

/// Which optimizer a run should use — a campaign hyperparameter like the
/// learning rate. Adam is the paper-faithful default; the second-order
/// options consume exact Hessian-vector products through
/// [`CurvatureOracle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptimizerKind {
    /// Adam with the paper's piecewise-constant decay (the default).
    #[default]
    Adam,
    /// Matrix-free trust-region Newton: CG on Hessian-vector products.
    NewtonCg,
    /// Limited-memory BFGS with two-loop recursion and Armijo backtracking.
    Lbfgs,
}

impl OptimizerKind {
    /// Every kind, in report order.
    pub const ALL: [OptimizerKind; 3] = [
        OptimizerKind::Adam,
        OptimizerKind::NewtonCg,
        OptimizerKind::Lbfgs,
    ];

    /// Stable lowercase name, used in run identifiers and ledgers.
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerKind::Adam => "adam",
            OptimizerKind::NewtonCg => "newton-cg",
            OptimizerKind::Lbfgs => "lbfgs",
        }
    }

    /// Whether this kind needs a [`CurvatureOracle`] at step time.
    pub fn is_second_order(&self) -> bool {
        !matches!(self, OptimizerKind::Adam)
    }

    /// Builds the optimizer for `n` parameters. `lr` is Adam's base rate
    /// (with the paper's decay over `iterations`) and the second-order
    /// methods' fallback/first-step scale.
    pub fn build(&self, n: usize, lr: f64, iterations: usize) -> Box<dyn Optimizer> {
        match self {
            OptimizerKind::Adam => Box::new(Adam::new(n, Schedule::paper_decay(lr, iterations))),
            OptimizerKind::NewtonCg => Box::new(NewtonCg::new(lr)),
            OptimizerKind::Lbfgs => Box::new(Lbfgs::new(lr)),
        }
    }
}
