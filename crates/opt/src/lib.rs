#![warn(missing_docs)]

//! # meshfree-opt
//!
//! First-order optimizers shared by all three control strategies.
//!
//! The paper uses **Adam everywhere** — "for all our DAL, PINN, and DP
//! experiments, we used the Adam optimiser", noting that, while unusual for
//! DAL/DP, "Adam helped increase robustness to noisy gradients at
//! boundaries due to the Runge phenomenon". The learning-rate schedule is
//! the paper's piecewise-constant decay: "the initial learning rate was
//! divided by 10 after half the iterations or epochs, and again by 10 at
//! 75 % completion."

pub mod adam;
pub mod schedule;
pub mod sgd;

pub use adam::Adam;
pub use schedule::Schedule;
pub use sgd::Sgd;

use linalg::DVec;

/// A first-order optimizer over a flat parameter vector.
pub trait Optimizer {
    /// Applies one update step given the gradient at the current point.
    fn step(&mut self, params: &mut DVec, grad: &DVec);
    /// Steps taken so far.
    fn iteration(&self) -> usize;
    /// The learning rate that the *next* step will use.
    fn current_lr(&self) -> f64;
}
