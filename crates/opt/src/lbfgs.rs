//! Limited-memory BFGS with the standard two-loop recursion and Armijo
//! backtracking.
//!
//! L-BFGS rebuilds an approximation of the inverse Hessian from the last
//! `m` gradient differences — no Hessian-vector products needed, only the
//! cost oracle for its line search. Curvature pairs `(s, y)` with
//! `sᵀy ≤ 0` (possible on the inexact DAL gradient) are skipped, keeping
//! the implicit inverse Hessian positive definite. If the line search
//! exhausts its backtracks the step degrades to the lr-scaled gradient
//! step, mirroring [`crate::NewtonCg`]'s fallback contract.
//!
//! Every reduction is a fixed-order scalar loop: runs are bitwise
//! reproducible across thread-pool widths.

use crate::{CurvatureOracle, Optimizer};
use linalg::DVec;
use std::collections::VecDeque;

/// Limited-memory BFGS (two-loop recursion, Armijo backtracking).
#[derive(Debug, Clone)]
pub struct Lbfgs {
    lr: f64,
    memory: usize,
    c1: f64,
    max_backtracks: usize,
    s: VecDeque<DVec>,
    y: VecDeque<DVec>,
    rho: VecDeque<f64>,
    prev_x: Option<DVec>,
    prev_g: Option<DVec>,
    t: usize,
    fallback_steps: usize,
}

impl Lbfgs {
    /// Creates L-BFGS with memory 10; `lr` scales the first step and the
    /// gradient fallback.
    pub fn new(lr: f64) -> Lbfgs {
        Lbfgs {
            lr,
            memory: 10,
            c1: 1e-4,
            max_backtracks: 25,
            s: VecDeque::new(),
            y: VecDeque::new(),
            rho: VecDeque::new(),
            prev_x: None,
            prev_g: None,
            t: 0,
            fallback_steps: 0,
        }
    }

    /// Overrides the number of stored curvature pairs (default 10).
    pub fn with_memory(mut self, memory: usize) -> Lbfgs {
        self.memory = memory.max(1);
        self
    }

    /// How many steps so far degraded to the gradient fallback.
    pub fn fallback_steps(&self) -> usize {
        self.fallback_steps
    }

    /// Stored curvature pairs.
    pub fn pairs(&self) -> usize {
        self.s.len()
    }

    fn push_pair(&mut self, s: DVec, y: DVec) {
        let sy = s.dot(&y);
        // Curvature guard: only store pairs that keep the implicit inverse
        // Hessian positive definite.
        if sy <= 1e-12 * s.norm2() * y.norm2() {
            return;
        }
        if self.s.len() == self.memory {
            self.s.pop_front();
            self.y.pop_front();
            self.rho.pop_front();
        }
        self.rho.push_back(1.0 / sy);
        self.s.push_back(s);
        self.y.push_back(y);
    }

    /// Two-loop recursion: returns the quasi-Newton direction `−Hₖ⁻¹ g`.
    fn direction(&self, grad: &DVec) -> DVec {
        if self.s.is_empty() {
            return grad.scaled(-self.lr);
        }
        let k = self.s.len();
        let mut q = grad.clone();
        let mut alpha = vec![0.0; k];
        for i in (0..k).rev() {
            alpha[i] = self.rho[i] * self.s[i].dot(&q);
            q.axpy(-alpha[i], &self.y[i]);
        }
        // Initial scaling γ = sᵀy / yᵀy from the most recent pair.
        let gamma = {
            let y = &self.y[k - 1];
            (1.0 / self.rho[k - 1]) / y.dot(y)
        };
        let mut r = q.scaled(gamma);
        for (i, &a) in alpha.iter().enumerate() {
            let beta = self.rho[i] * self.y[i].dot(&r);
            r.axpy(a - beta, &self.s[i]);
        }
        r.scale_mut(-1.0);
        r
    }
}

impl Optimizer for Lbfgs {
    fn step(&mut self, params: &mut DVec, grad: &DVec) {
        // Without a cost oracle there is no safe line search: plain
        // gradient descent at the fallback rate.
        self.t += 1;
        params.axpy(-self.lr, grad);
    }

    fn iteration(&self) -> usize {
        self.t
    }

    fn current_lr(&self) -> f64 {
        self.lr
    }

    fn uses_curvature(&self) -> bool {
        true
    }

    fn step_with_curvature(
        &mut self,
        params: &mut DVec,
        cost: f64,
        grad: &DVec,
        oracle: &mut dyn CurvatureOracle,
    ) {
        self.t += 1;
        if grad.norm_inf() == 0.0 {
            return;
        }
        // Harvest the curvature pair from the previous accepted step.
        if let (Some(px), Some(pg)) = (&self.prev_x, &self.prev_g) {
            let mut s = params.clone();
            s.axpy(-1.0, px);
            let mut y = grad.clone();
            y.axpy(-1.0, pg);
            self.push_pair(s, y);
        }
        self.prev_x = Some(params.clone());
        self.prev_g = Some(grad.clone());

        let d = self.direction(grad);
        let slope = grad.dot(&d);
        if slope < 0.0 && !d.has_non_finite() {
            // Armijo backtracking: accept the first a with
            // J(x + a·d) ≤ J(x) + c₁·a·gᵀd.
            let mut a = 1.0;
            for _ in 0..self.max_backtracks {
                let mut trial = params.clone();
                trial.axpy(a, &d);
                match oracle.cost_at(&trial) {
                    Some(j) if j.is_finite() && j <= cost + self.c1 * a * slope => {
                        *params = trial;
                        return;
                    }
                    _ => a *= 0.5,
                }
            }
        }
        // Fallback: lr-scaled gradient step.
        self.fallback_steps += 1;
        params.axpy(-self.lr, grad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle over an explicit cost function; gradients supplied by tests.
    struct CostOracle<F: Fn(&DVec) -> f64> {
        f: F,
        calls: usize,
    }

    impl<F: Fn(&DVec) -> f64> CurvatureOracle for CostOracle<F> {
        fn hvp(&mut self, _v: &DVec) -> Option<DVec> {
            None // L-BFGS never asks.
        }
        fn cost_at(&mut self, c: &DVec) -> Option<f64> {
            self.calls += 1;
            Some((self.f)(c))
        }
    }

    fn rosenbrock(x: &DVec) -> f64 {
        (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
    }

    fn rosenbrock_grad(x: &DVec) -> DVec {
        DVec(vec![
            -2.0 * (1.0 - x[0]) - 400.0 * x[0] * (x[1] - x[0] * x[0]),
            200.0 * (x[1] - x[0] * x[0]),
        ])
    }

    #[test]
    fn lbfgs_minimises_rosenbrock() {
        let mut oracle = CostOracle {
            f: rosenbrock,
            calls: 0,
        };
        let mut opt = Lbfgs::new(1e-3);
        let mut x = DVec(vec![-1.2, 1.0]);
        for _ in 0..120 {
            let j = rosenbrock(&x);
            let g = rosenbrock_grad(&x);
            opt.step_with_curvature(&mut x, j, &g, &mut oracle);
        }
        assert!(
            (x[0] - 1.0).abs() < 1e-4 && (x[1] - 1.0).abs() < 1e-4,
            "x = ({}, {})",
            x[0],
            x[1]
        );
    }

    #[test]
    fn lbfgs_beats_the_iteration_count_of_plain_descent_on_a_quadratic() {
        // Badly scaled quadratic: f = ½(x₀² + 100 x₁²).
        let f = |x: &DVec| 0.5 * (x[0] * x[0] + 100.0 * x[1] * x[1]);
        let g = |x: &DVec| DVec(vec![x[0], 100.0 * x[1]]);
        let mut oracle = CostOracle { f, calls: 0 };
        let mut opt = Lbfgs::new(1e-2);
        let mut x = DVec(vec![8.0, 1.0]);
        let mut iters = 0;
        while f(&x) > 1e-12 && iters < 60 {
            let (j, gr) = (f(&x), g(&x));
            opt.step_with_curvature(&mut x, j, &gr, &mut oracle);
            iters += 1;
        }
        assert!(
            iters < 40,
            "L-BFGS needed {iters} iterations on a 2-d quadratic"
        );
    }

    #[test]
    fn cost_never_increases_along_the_run() {
        let f = |x: &DVec| (x[0] - 2.0).powi(4) + (x[1] + 1.0).powi(2);
        let g = |x: &DVec| DVec(vec![4.0 * (x[0] - 2.0).powi(3), 2.0 * (x[1] + 1.0)]);
        let mut oracle = CostOracle { f, calls: 0 };
        let mut opt = Lbfgs::new(1e-2);
        let mut x = DVec(vec![5.0, 3.0]);
        let mut last = f(&x);
        for _ in 0..50 {
            let (j, gr) = (f(&x), g(&x));
            opt.step_with_curvature(&mut x, j, &gr, &mut oracle);
            let now = f(&x);
            assert!(now <= last + 1e-12, "cost rose from {last} to {now}");
            last = now;
        }
    }

    #[test]
    fn non_descent_direction_falls_back_to_gradient() {
        // An oracle that rejects every trial forces the fallback path.
        struct Reject;
        impl CurvatureOracle for Reject {
            fn hvp(&mut self, _v: &DVec) -> Option<DVec> {
                None
            }
            fn cost_at(&mut self, _c: &DVec) -> Option<f64> {
                None
            }
        }
        let lr = 0.1;
        let mut opt = Lbfgs::new(lr);
        let mut x = DVec(vec![1.0, 1.0]);
        let g = DVec(vec![2.0, -1.0]);
        opt.step_with_curvature(&mut x, 5.0, &g, &mut Reject);
        assert_eq!(opt.fallback_steps(), 1);
        assert!((x[0] - (1.0 - lr * 2.0)).abs() < 1e-15);
        assert!((x[1] - (1.0 + lr)).abs() < 1e-15);
    }

    #[test]
    fn memory_is_bounded() {
        let f = |x: &DVec| x.dot(x);
        let g = |x: &DVec| x.scaled(2.0);
        let mut oracle = CostOracle { f, calls: 0 };
        let mut opt = Lbfgs::new(1e-2).with_memory(3);
        let mut x = DVec(vec![4.0, -3.0, 2.0, -1.0]);
        for _ in 0..20 {
            let (j, gr) = (f(&x), g(&x));
            opt.step_with_curvature(&mut x, j, &gr, &mut oracle);
        }
        assert!(opt.pairs() <= 3);
        assert!(f(&x) < 1e-6, "quadratic not minimised: {}", f(&x));
    }
}
