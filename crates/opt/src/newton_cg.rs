//! Matrix-free trust-region Newton: conjugate gradients on exact
//! Hessian-vector products (Steihaug–Toint).
//!
//! Each outer step solves the Newton system `H p = −g` approximately with
//! CG, never forming `H` — every CG iteration costs one
//! [`CurvatureOracle::hvp`] query, which the forward-over-reverse tape
//! answers with four triangular solves on a cached factorization. Three
//! safeguards keep the step robust on imperfect curvature:
//!
//! 1. **Negative curvature** truncates CG at the trust-region boundary
//!    along the offending direction (Steihaug).
//! 2. **Trust region**: a candidate step is accepted only if the oracle
//!    confirms the cost does not increase; rejected steps shrink onto a
//!    smaller radius (deterministic quartering) before retrying.
//! 3. **Gradient fallback**: if the HVP fails, CG makes no progress, or
//!    every shrink is rejected, the step degrades to the plain lr-scaled
//!    gradient step — the optimizer never stalls or diverges.
//!
//! All inner products are fixed-order scalar loops, so a Newton-CG run is
//! bitwise reproducible regardless of thread-pool width.

use crate::{CurvatureOracle, Optimizer};
use linalg::DVec;

/// Trust-region Newton-CG over exact Hessian-vector products.
#[derive(Debug, Clone)]
pub struct NewtonCg {
    lr: f64,
    cg_tol: f64,
    cg_max: usize,
    radius: f64,
    max_rejects: usize,
    t: usize,
    last_cg_iters: usize,
    fallback_steps: usize,
}

impl NewtonCg {
    /// Creates Newton-CG; `lr` scales the gradient-descent fallback step.
    pub fn new(lr: f64) -> NewtonCg {
        NewtonCg {
            lr,
            cg_tol: 1e-10,
            cg_max: 250,
            radius: 1e3,
            max_rejects: 8,
            t: 0,
            last_cg_iters: 0,
            fallback_steps: 0,
        }
    }

    /// Overrides the relative CG residual tolerance (default `1e-10`).
    pub fn with_cg_tol(mut self, tol: f64) -> NewtonCg {
        self.cg_tol = tol;
        self
    }

    /// Overrides the CG iteration cap (default 250).
    pub fn with_cg_max(mut self, cg_max: usize) -> NewtonCg {
        self.cg_max = cg_max;
        self
    }

    /// Overrides the initial trust radius (default `1e3` — effectively
    /// inactive until a step is rejected).
    pub fn with_radius(mut self, radius: f64) -> NewtonCg {
        self.radius = radius;
        self
    }

    /// CG iterations spent by the most recent step.
    pub fn last_cg_iters(&self) -> usize {
        self.last_cg_iters
    }

    /// How many steps so far degraded to the gradient fallback.
    pub fn fallback_steps(&self) -> usize {
        self.fallback_steps
    }

    /// Steihaug-CG on `H p = −g`, capped at trust radius `delta`.
    /// Returns `None` if the very first HVP fails.
    fn steihaug_cg(
        &mut self,
        grad: &DVec,
        delta: f64,
        oracle: &mut dyn CurvatureOracle,
    ) -> Option<DVec> {
        let n = grad.len();
        let mut p = DVec::zeros(n);
        let mut r = grad.clone(); // residual of Hp + g; r = g at p = 0
        let mut d = grad.scaled(-1.0);
        let g_norm2 = grad.dot(grad);
        if g_norm2 == 0.0 {
            return Some(p);
        }
        let stop2 = (self.cg_tol * self.cg_tol) * g_norm2;
        let mut r2 = g_norm2;
        self.last_cg_iters = 0;
        for _ in 0..self.cg_max {
            let hd = match oracle.hvp(&d) {
                Some(h) if !h.has_non_finite() => h,
                _ => {
                    // HVP failed mid-flight: keep whatever progress p holds
                    // (possibly zero — caller falls back on the gradient).
                    return if self.last_cg_iters == 0 {
                        None
                    } else {
                        Some(p)
                    };
                }
            };
            self.last_cg_iters += 1;
            let dhd = d.dot(&hd);
            if dhd <= 0.0 {
                // Negative curvature: march to the trust boundary along d.
                let tau = boundary_tau(&p, &d, delta);
                p.axpy(tau, &d);
                return Some(p);
            }
            let alpha = r2 / dhd;
            let mut p_next = p.clone();
            p_next.axpy(alpha, &d);
            if p_next.norm2() > delta {
                let tau = boundary_tau(&p, &d, delta);
                p.axpy(tau, &d);
                return Some(p);
            }
            p = p_next;
            r.axpy(alpha, &hd);
            let r2_next = r.dot(&r);
            if r2_next <= stop2 {
                return Some(p);
            }
            let beta = r2_next / r2;
            r2 = r2_next;
            for i in 0..n {
                d[i] = -r[i] + beta * d[i];
            }
        }
        Some(p)
    }
}

/// Positive root `τ` of `‖p + τ·d‖ = delta` (largest feasible move along
/// `d` from inside the trust region).
fn boundary_tau(p: &DVec, d: &DVec, delta: f64) -> f64 {
    let dd = d.dot(d);
    if dd == 0.0 {
        return 0.0;
    }
    let pd = p.dot(d);
    let pp = p.dot(p);
    let disc = (pd * pd + dd * (delta * delta - pp)).max(0.0);
    (-pd + disc.sqrt()) / dd
}

impl Optimizer for NewtonCg {
    fn step(&mut self, params: &mut DVec, grad: &DVec) {
        // Without curvature this is plain gradient descent at the fallback
        // rate — a usable (if slow) degradation.
        self.t += 1;
        params.axpy(-self.lr, grad);
    }

    fn iteration(&self) -> usize {
        self.t
    }

    fn current_lr(&self) -> f64 {
        self.lr
    }

    fn uses_curvature(&self) -> bool {
        true
    }

    fn step_with_curvature(
        &mut self,
        params: &mut DVec,
        cost: f64,
        grad: &DVec,
        oracle: &mut dyn CurvatureOracle,
    ) {
        self.t += 1;
        if grad.norm_inf() == 0.0 {
            return;
        }
        let mut delta = self.radius;
        for _ in 0..=self.max_rejects {
            let Some(p) = self.steihaug_cg(grad, delta, oracle) else {
                break;
            };
            let p_norm = p.norm2();
            if p_norm == 0.0 || p.has_non_finite() {
                break;
            }
            let mut trial = params.clone();
            trial.axpy(1.0, &p);
            match oracle.cost_at(&trial) {
                Some(j) if j.is_finite() && j <= cost => {
                    *params = trial;
                    // A clean acceptance re-opens the trust region.
                    self.radius = (2.0 * p_norm).max(self.radius);
                    return;
                }
                _ => {
                    // Reject: shrink well inside the failed step and retry.
                    delta = p_norm * 0.25;
                    self.radius = delta;
                    if delta == 0.0 {
                        break;
                    }
                }
            }
        }
        // Trust-region fallback: the lr-scaled gradient step.
        self.fallback_steps += 1;
        params.axpy(-self.lr, grad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A dense quadratic ½xᵀQx − bᵀx with analytic gradient/HVP oracle.
    struct Quadratic {
        q: Vec<Vec<f64>>,
        b: DVec,
        x: DVec,
        hvp_calls: usize,
        fail_hvp: bool,
    }

    impl Quadratic {
        fn matvec(&self, v: &DVec) -> DVec {
            DVec::from_fn(v.len(), |i| {
                self.q[i].iter().zip(v.iter()).map(|(a, x)| a * x).sum()
            })
        }
        fn grad(&self) -> DVec {
            let mut g = self.matvec(&self.x);
            g.axpy(-1.0, &self.b);
            g
        }
        fn cost(&self, x: &DVec) -> f64 {
            let qx = DVec::from_fn(x.len(), |i| {
                self.q[i].iter().zip(x.iter()).map(|(a, y)| a * y).sum()
            });
            0.5 * x.dot(&qx) - self.b.dot(x)
        }
    }

    impl CurvatureOracle for Quadratic {
        fn hvp(&mut self, v: &DVec) -> Option<DVec> {
            if self.fail_hvp {
                return None;
            }
            self.hvp_calls += 1;
            Some(self.matvec(v))
        }
        fn cost_at(&mut self, c: &DVec) -> Option<f64> {
            Some(self.cost(c))
        }
    }

    fn spd_problem() -> Quadratic {
        Quadratic {
            q: vec![
                vec![4.0, 1.0, 0.0],
                vec![1.0, 3.0, 0.5],
                vec![0.0, 0.5, 2.0],
            ],
            b: DVec(vec![1.0, -2.0, 0.5]),
            x: DVec(vec![5.0, -4.0, 3.0]),
            hvp_calls: 0,
            fail_hvp: false,
        }
    }

    #[test]
    fn newton_cg_solves_spd_quadratic_in_one_step() {
        let mut prob = spd_problem();
        let mut opt = NewtonCg::new(1e-2);
        let g = prob.grad();
        let j = prob.cost(&prob.x.clone());
        let mut x = prob.x.clone();
        opt.step_with_curvature(&mut x, j, &g, &mut prob);
        prob.x = x.clone();
        // One exact Newton step lands on the minimiser of a quadratic.
        let g_after = prob.grad();
        assert!(
            g_after.norm_inf() < 1e-8,
            "gradient after one Newton step: {:.3e}",
            g_after.norm_inf()
        );
        assert_eq!(opt.fallback_steps(), 0);
        assert!(opt.last_cg_iters() <= 3, "CG finished within n iterations");
    }

    #[test]
    fn hvp_failure_falls_back_to_gradient_step() {
        let mut prob = spd_problem();
        prob.fail_hvp = true;
        let lr = 0.05;
        let mut opt = NewtonCg::new(lr);
        let g = prob.grad();
        let j = prob.cost(&prob.x.clone());
        let mut x = prob.x.clone();
        let expected = {
            let mut e = x.clone();
            e.axpy(-lr, &g);
            e
        };
        opt.step_with_curvature(&mut x, j, &g, &mut prob);
        assert_eq!(opt.fallback_steps(), 1);
        for i in 0..x.len() {
            assert_eq!(x[i].to_bits(), expected[i].to_bits(), "exact fallback");
        }
    }

    #[test]
    fn zero_gradient_is_a_no_op() {
        let mut prob = spd_problem();
        let mut opt = NewtonCg::new(0.1);
        let mut x = DVec(vec![1.0, 2.0, 3.0]);
        let before = x.clone();
        opt.step_with_curvature(&mut x, 0.0, &DVec::zeros(3), &mut prob);
        assert_eq!(x.as_slice(), before.as_slice());
    }

    #[test]
    fn negative_curvature_is_truncated_not_followed() {
        // Indefinite Q: CG must stop at the trust boundary, and the
        // cost-decrease guard must still hold via the fallback.
        let mut prob = Quadratic {
            q: vec![vec![-2.0, 0.0], vec![0.0, 1.0]],
            b: DVec(vec![0.0, 1.0]),
            x: DVec(vec![0.5, 4.0]),
            hvp_calls: 0,
            fail_hvp: false,
        };
        let mut opt = NewtonCg::new(0.1).with_radius(1.0);
        let g = prob.grad();
        let j = prob.cost(&prob.x.clone());
        let mut x = prob.x.clone();
        opt.step_with_curvature(&mut x, j, &g, &mut prob);
        let j_after = prob.cost(&x);
        assert!(j_after <= j, "cost must not increase: {j_after} vs {j}");
    }

    #[test]
    fn first_order_step_is_plain_gradient_descent() {
        let mut opt = NewtonCg::new(0.1);
        let mut x = DVec(vec![1.0]);
        opt.step(&mut x, &DVec(vec![2.0]));
        assert!((x[0] - 0.8).abs() < 1e-15);
        assert_eq!(opt.iteration(), 1);
        assert!(opt.uses_curvature());
    }
}
