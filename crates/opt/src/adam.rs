//! The Adam optimizer (Kingma & Ba), as used for every method in the paper.

use crate::schedule::Schedule;
use crate::Optimizer;
use linalg::DVec;

/// Adam with bias correction and a pluggable learning-rate schedule.
#[derive(Debug, Clone)]
pub struct Adam {
    schedule: Schedule,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: DVec,
    v: DVec,
    t: usize,
}

impl Adam {
    /// Creates Adam with the standard `(β₁, β₂, ε) = (0.9, 0.999, 1e-8)`.
    pub fn new(n_params: usize, schedule: Schedule) -> Adam {
        Adam {
            schedule,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: DVec::zeros(n_params),
            v: DVec::zeros(n_params),
            t: 0,
        }
    }

    /// Overrides the moment coefficients.
    pub fn with_betas(mut self, beta1: f64, beta2: f64) -> Adam {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut DVec, grad: &DVec) {
        assert_eq!(params.len(), self.m.len(), "adam: wrong parameter count");
        assert_eq!(grad.len(), self.m.len(), "adam: wrong gradient length");
        let lr = self.schedule.at(self.t);
        self.t += 1;
        let t = self.t as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn iteration(&self) -> usize {
        self.t
    }

    fn current_lr(&self) -> f64 {
        self.schedule.at(self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise a convex quadratic and check convergence.
    #[test]
    fn adam_minimises_quadratic() {
        let mut x = DVec(vec![5.0, -3.0]);
        let mut adam = Adam::new(2, Schedule::Constant(0.1));
        for _ in 0..500 {
            let g = DVec(vec![2.0 * (x[0] - 1.0), 2.0 * (x[1] + 2.0)]);
            adam.step(&mut x, &g);
        }
        assert!((x[0] - 1.0).abs() < 1e-3, "x0 = {}", x[0]);
        assert!((x[1] + 2.0).abs() < 1e-3, "x1 = {}", x[1]);
    }

    #[test]
    fn adam_handles_badly_scaled_gradients() {
        // Adam's per-coordinate normalisation should cope with a 1e6
        // conditioning spread (plain GD at this rate would crawl or blow up).
        let mut x = DVec(vec![1.0, 1.0]);
        let mut adam = Adam::new(2, Schedule::Constant(0.05));
        for _ in 0..2000 {
            let g = DVec(vec![2e6 * x[0], 2e-2 * x[1]]);
            adam.step(&mut x, &g);
        }
        assert!(x[0].abs() < 1e-3);
        assert!(x[1].abs() < 0.2);
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // With bias correction, the first Adam step has magnitude ≈ lr.
        let mut x = DVec(vec![0.0]);
        let mut adam = Adam::new(1, Schedule::Constant(0.01));
        adam.step(&mut x, &DVec(vec![123.0]));
        assert!((x[0] + 0.01).abs() < 1e-6, "step was {}", x[0]);
    }

    #[test]
    fn schedule_is_respected() {
        let mut adam = Adam::new(1, Schedule::paper_decay(1.0, 100));
        let mut x = DVec(vec![0.0]);
        for _ in 0..60 {
            adam.step(&mut x, &DVec(vec![1.0]));
        }
        assert!((adam.current_lr() - 0.1).abs() < 1e-12);
        assert_eq!(adam.iteration(), 60);
    }

    #[test]
    #[should_panic(expected = "wrong gradient length")]
    fn wrong_gradient_length_panics() {
        let mut adam = Adam::new(2, Schedule::Constant(0.1));
        let mut x = DVec::zeros(2);
        adam.step(&mut x, &DVec::zeros(3));
    }
}
