//! Learning-rate schedules.

/// A learning-rate schedule as a function of the step index.
#[derive(Debug, Clone)]
pub enum Schedule {
    /// Constant learning rate.
    Constant(f64),
    /// Piecewise-constant decay: the base rate is multiplied by `factors[k]`
    /// once `step ≥ boundaries[k]`.
    PiecewiseConstant {
        /// Base learning rate.
        base: f64,
        /// Step indices at which the rate changes (ascending).
        boundaries: Vec<usize>,
        /// Cumulative multipliers applied from each boundary on.
        factors: Vec<f64>,
    },
}

impl Schedule {
    /// The paper's schedule: base rate, ÷10 at 50 % of `total_steps`, ÷10
    /// again (i.e. ÷100 overall) at 75 %.
    pub fn paper_decay(base: f64, total_steps: usize) -> Schedule {
        Schedule::PiecewiseConstant {
            base,
            boundaries: vec![total_steps / 2, 3 * total_steps / 4],
            factors: vec![0.1, 0.01],
        }
    }

    /// Learning rate at `step`.
    pub fn at(&self, step: usize) -> f64 {
        match self {
            Schedule::Constant(lr) => *lr,
            Schedule::PiecewiseConstant {
                base,
                boundaries,
                factors,
            } => {
                let mut lr = *base;
                for (b, f) in boundaries.iter().zip(factors) {
                    if step >= *b {
                        lr = base * f;
                    }
                }
                lr
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = Schedule::Constant(0.01);
        assert_eq!(s.at(0), 0.01);
        assert_eq!(s.at(1_000_000), 0.01);
    }

    #[test]
    fn paper_decay_matches_description() {
        let s = Schedule::paper_decay(1e-2, 400);
        assert_eq!(s.at(0), 1e-2);
        assert_eq!(s.at(199), 1e-2);
        assert!((s.at(200) - 1e-3).abs() < 1e-18);
        assert!((s.at(299) - 1e-3).abs() < 1e-18);
        assert!((s.at(300) - 1e-4).abs() < 1e-19);
        assert!((s.at(399) - 1e-4).abs() < 1e-19);
    }

    #[test]
    fn boundaries_are_cumulative_not_compounded() {
        // The factors are absolute multipliers of the base rate.
        let s = Schedule::PiecewiseConstant {
            base: 1.0,
            boundaries: vec![10, 20],
            factors: vec![0.5, 0.25],
        };
        assert_eq!(s.at(15), 0.5);
        assert_eq!(s.at(25), 0.25);
    }
}
